// Package iset is this project's stand-in for the Omega library (§5 of the
// paper): integer iteration sets described by affine constraints, with
// Fourier–Motzkin projection, exact lexicographic enumeration, and loop
// code generation (the codegen utility the paper uses to "generate the loop
// nests that iterate over the data elements in Q_di").
//
// A Domain is a conjunction of affine inequalities over an ordered list of
// iterator variables. Projection uses rational Fourier–Motzkin elimination,
// which over-approximates integer projection; enumeration remains exact
// because the innermost level enforces every original constraint, so the
// only cost of the approximation is occasionally visiting an outer value
// whose inner range turns out empty. This matches what the paper needs:
// per-disk iteration sets under striping are conjunctions of the nest
// bounds with stripe-range constraints on the (affine) linearized subscript
// expression.
package iset

import (
	"fmt"
	"strings"

	"diskreuse/internal/affine"
)

// Domain is a conjunction of constraints e >= 0 over ordered variables.
type Domain struct {
	Vars []string
	Cons []affine.Expr // each expression is constrained to be >= 0

	// proj[l] caches the constraint system with variables l+1.. eliminated
	// (so every constraint mentions only Vars[0..l]). proj[len(Vars)-1] is
	// the original system. Built lazily by project().
	proj [][]affine.Expr
}

// NewDomain returns an unconstrained domain over the given variables.
func NewDomain(vars ...string) *Domain {
	return &Domain{Vars: append([]string(nil), vars...)}
}

// Clone returns a deep copy of d (without cached projections).
func (d *Domain) Clone() *Domain {
	out := NewDomain(d.Vars...)
	out.Cons = append([]affine.Expr(nil), d.Cons...)
	return out
}

// varIndex returns the position of name in d.Vars, or -1.
func (d *Domain) varIndex(name string) int {
	for i, v := range d.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// AddGE constrains e >= 0. Every variable of e must be a domain variable.
func (d *Domain) AddGE(e affine.Expr) error {
	for v := range e.Coeffs {
		if d.varIndex(v) < 0 {
			return fmt.Errorf("iset: constraint %s >= 0 uses unknown variable %s", e, v)
		}
	}
	d.Cons = append(d.Cons, e)
	d.proj = nil
	return nil
}

// AddLE constrains a <= b.
func (d *Domain) AddLE(a, b affine.Expr) error { return d.AddGE(b.Sub(a)) }

// AddRange constrains lo <= Var(name) <= hi.
func (d *Domain) AddRange(name string, lo, hi affine.Expr) error {
	v := affine.Var(name)
	if err := d.AddLE(lo, v); err != nil {
		return err
	}
	return d.AddLE(v, hi)
}

// AddEQ constrains e == 0 (as two inequalities).
func (d *Domain) AddEQ(e affine.Expr) error {
	if err := d.AddGE(e); err != nil {
		return err
	}
	return d.AddGE(e.Neg())
}

// Intersect returns the conjunction of d and o, which must share the same
// variable list.
func (d *Domain) Intersect(o *Domain) (*Domain, error) {
	if len(d.Vars) != len(o.Vars) {
		return nil, fmt.Errorf("iset: intersect over different variable lists")
	}
	for i := range d.Vars {
		if d.Vars[i] != o.Vars[i] {
			return nil, fmt.Errorf("iset: intersect over different variable lists")
		}
	}
	out := d.Clone()
	out.Cons = append(out.Cons, o.Cons...)
	return out, nil
}

// Contains reports whether the integer point v satisfies every constraint.
func (d *Domain) Contains(v affine.Vector) bool {
	if len(v) != len(d.Vars) {
		return false
	}
	env := make(map[string]int64, len(v))
	for i, name := range d.Vars {
		env[name] = v[i]
	}
	for _, c := range d.Cons {
		if c.MustEval(env) < 0 {
			return false
		}
	}
	return true
}

// normalize divides a constraint by the gcd of its coefficients, flooring
// the constant (sound for >= 0 constraints on integers).
func normalize(e affine.Expr) affine.Expr {
	var coeffs []int64
	for _, c := range e.Coeffs {
		coeffs = append(coeffs, c)
	}
	g := affine.GCDAll(coeffs...)
	if g <= 1 {
		return e
	}
	out := affine.Expr{Const: affine.FloorDiv(e.Const, g), Coeffs: map[string]int64{}}
	for v, c := range e.Coeffs {
		out.Coeffs[v] = c / g
	}
	return out
}

// eliminate removes variable name from the constraint system cons by
// rational Fourier–Motzkin elimination.
func eliminate(cons []affine.Expr, name string) []affine.Expr {
	var lower, upper, free []affine.Expr
	for _, c := range cons {
		switch coeff := c.Coeff(name); {
		case coeff > 0:
			lower = append(lower, c)
		case coeff < 0:
			upper = append(upper, c)
		default:
			free = append(free, c)
		}
	}
	out := free
	for _, lo := range lower {
		a := lo.Coeff(name) // > 0
		rL := lo.Sub(affine.Term(name, a))
		for _, up := range upper {
			b := -up.Coeff(name) // > 0
			rU := up.Add(affine.Term(name, b))
			// x >= -rL/a and x <= rU/b feasible iff a*rU + b*rL >= 0.
			out = append(out, normalize(rU.Scale(a).Add(rL.Scale(b))))
		}
	}
	return out
}

// project builds the cached per-level projected systems.
func (d *Domain) project() {
	if d.proj != nil {
		return
	}
	n := len(d.Vars)
	d.proj = make([][]affine.Expr, n)
	cur := append([]affine.Expr(nil), d.Cons...)
	for l := n - 1; l >= 0; l-- {
		d.proj[l] = cur
		if l > 0 {
			cur = eliminate(cur, d.Vars[l])
		}
	}
}

// BoundsAt returns the integer range [lo, hi] of variable level given the
// outer variables fixed as in env. ok is false when the range is empty or
// when a variable-free constraint is violated at env.
func (d *Domain) BoundsAt(level int, env map[string]int64) (lo, hi int64, ok bool) {
	d.project()
	name := d.Vars[level]
	const inf = int64(1) << 62
	lo, hi = -inf, inf
	for _, c := range d.proj[level] {
		coeff := c.Coeff(name)
		rest := c.Sub(affine.Term(name, coeff))
		r, err := rest.Eval(env)
		if err != nil {
			// Constraint mentions an inner variable we could not eliminate
			// exactly; skip here — it is enforced at its own level.
			continue
		}
		switch {
		case coeff > 0: // coeff*x + r >= 0  =>  x >= ceil(-r/coeff)
			if b := affine.CeilDiv(-r, coeff); b > lo {
				lo = b
			}
		case coeff < 0: // coeff*x + r >= 0  =>  x <= floor(r/(-coeff))
			if b := affine.FloorDiv(r, -coeff); b < hi {
				hi = b
			}
		default:
			if r < 0 {
				return 0, 0, false
			}
		}
	}
	if lo == -inf || hi == inf {
		// Unbounded direction: reject rather than enumerate forever.
		return 0, 0, false
	}
	return lo, hi, lo <= hi
}

// Enumerate visits every integer point of the domain in lexicographic
// order. The vector passed to fn is reused; copy it to retain it.
func (d *Domain) Enumerate(fn func(affine.Vector)) {
	n := len(d.Vars)
	if n == 0 {
		return
	}
	d.project()
	v := make(affine.Vector, n)
	env := make(map[string]int64, n)
	var rec func(level int)
	rec = func(level int) {
		lo, hi, ok := d.BoundsAt(level, env)
		if !ok {
			return
		}
		for x := lo; x <= hi; x++ {
			v[level] = x
			env[d.Vars[level]] = x
			if level == n-1 {
				fn(v)
			} else {
				rec(level + 1)
			}
		}
		delete(env, d.Vars[level])
	}
	rec(0)
}

// Points returns all points of the domain in lexicographic order.
func (d *Domain) Points() []affine.Vector {
	var out []affine.Vector
	d.Enumerate(func(v affine.Vector) { out = append(out, v.Clone()) })
	return out
}

// IsEmpty reports whether the domain contains no integer points.
func (d *Domain) IsEmpty() bool {
	empty := true
	d.Enumerate(func(affine.Vector) { empty = false })
	return empty
}

// Count returns the number of integer points.
func (d *Domain) Count() int64 {
	var n int64
	d.Enumerate(func(affine.Vector) { n++ })
	return n
}

// String renders the domain as "{ [i, j] : c1 >= 0 and c2 >= 0 }", the
// Omega-style set notation.
func (d *Domain) String() string {
	var b strings.Builder
	b.WriteString("{ [")
	b.WriteString(strings.Join(d.Vars, ", "))
	b.WriteString("]")
	if len(d.Cons) > 0 {
		b.WriteString(" : ")
		for i, c := range d.Cons {
			if i > 0 {
				b.WriteString(" and ")
			}
			fmt.Fprintf(&b, "%s >= 0", c)
		}
	}
	b.WriteString(" }")
	return b.String()
}
