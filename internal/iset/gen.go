package iset

import (
	"fmt"
	"strings"

	"diskreuse/internal/affine"
)

// Bound is one symbolic loop bound: the integer value ceil(E/Div) for lower
// bounds or floor(E/Div) for upper bounds, where E is affine in the
// enclosing loop variables. Div is always >= 1.
type Bound struct {
	E   affine.Expr
	Div int64
}

// vecBound is a Bound compiled against the loop chain's variable order
// (affine.VecExpr), so per-iteration bound evaluation reads straight off
// the value vector with no map.
type vecBound struct {
	e   affine.VecExpr
	div int64
}

func (b vecBound) eval(vals []int64, ceil bool) int64 {
	v := b.e.EvalVec(vals)
	if b.div == 1 {
		return v
	}
	if ceil {
		return affine.CeilDiv(v, b.div)
	}
	return affine.FloorDiv(v, b.div)
}

func (b Bound) render(ceil bool) string {
	if b.Div == 1 {
		return b.E.String()
	}
	op := "floordiv"
	if ceil {
		op = "ceildiv"
	}
	return fmt.Sprintf("%s(%s, %d)", op, b.E, b.Div)
}

// GenLoop is one level of generated (restructured) loop code, the output of
// Codegen — the role Omega's codegen utility plays in Fig. 3 of the paper.
// The loop runs Var from max(Lower) to min(Upper); when Step > 1 only
// values congruent to Offset modulo Step are visited. Guards are affine
// conditions over enclosing variables that must be nonnegative for the
// loop to execute at all.
type GenLoop struct {
	Var    string
	Lower  []Bound // effective lo = max_i ceil(Lower[i])
	Upper  []Bound // effective hi = min_i floor(Upper[i])
	Step   int64
	Offset int64 // congruence anchor for Step > 1
	Guards []affine.Expr
	Inner  *GenLoop // nil at the innermost level
}

// Codegen produces a chain of GenLoops that enumerate domain d in
// lexicographic order. The result executes exactly the points of d.
//
// The generated code is lightly simplified, the way Omega's codegen tidies
// its output: constant-true guards vanish, a constraint that already
// appeared at an outer level is not re-emitted as an inner guard, duplicate
// bounds are merged, and among constant bounds only the tightest survives.
func Codegen(d *Domain) (*GenLoop, error) {
	if len(d.Vars) == 0 {
		return nil, fmt.Errorf("iset: codegen over empty variable list")
	}
	d.project()
	seen := map[string]bool{} // constraints already enforced at outer levels
	var outer, cur *GenLoop
	for l, name := range d.Vars {
		g := &GenLoop{Var: name, Step: 1}
		for _, c := range d.proj[l] {
			coeff := c.Coeff(name)
			rest := c.Sub(affine.Term(name, coeff))
			switch {
			case coeff > 0:
				g.Lower = appendBound(g.Lower, Bound{E: rest.Neg(), Div: coeff}, false)
			case coeff < 0:
				g.Upper = appendBound(g.Upper, Bound{E: rest, Div: -coeff}, true)
			default:
				if c.IsConst() && c.Const >= 0 {
					continue // trivially true
				}
				if seen[c.String()] {
					continue // already enforced by an enclosing level
				}
				g.Guards = append(g.Guards, c)
			}
		}
		if len(g.Lower) == 0 || len(g.Upper) == 0 {
			return nil, fmt.Errorf("iset: variable %s is unbounded", name)
		}
		for _, c := range d.proj[l] {
			seen[c.String()] = true
		}
		if cur == nil {
			outer = g
		} else {
			cur.Inner = g
		}
		cur = g
	}
	return outer, nil
}

// appendBound adds b to bs, dropping exact duplicates and keeping only the
// tightest constant bound (the largest lower or the smallest upper).
func appendBound(bs []Bound, b Bound, upper bool) []Bound {
	if b.E.IsConst() && b.Div != 1 {
		// Fold a constant divided bound into a plain constant.
		if upper {
			b = Bound{E: affine.Constant(affine.FloorDiv(b.E.Const, b.Div)), Div: 1}
		} else {
			b = Bound{E: affine.Constant(affine.CeilDiv(b.E.Const, b.Div)), Div: 1}
		}
	}
	for i, have := range bs {
		if have.Div == b.Div && have.E.Equal(b.E) {
			return bs // duplicate
		}
		if have.E.IsConst() && b.E.IsConst() && have.Div == 1 && b.Div == 1 {
			// Keep the tighter constant.
			if upper && b.E.Const < have.E.Const || !upper && b.E.Const > have.E.Const {
				bs[i] = b
			}
			return bs
		}
	}
	return append(bs, b)
}

// compiledLevel is one loop level with its bounds and guards bound to the
// chain's variable order. A level's expressions only mention enclosing
// variables, so they evaluate against the vals prefix set by outer levels.
type compiledLevel struct {
	lower, upper []vecBound
	guards       []affine.VecExpr
	step, offset int64
}

// Vars returns the chain's loop variables, outermost first.
func (g *GenLoop) Vars() []string {
	var vars []string
	for l := g; l != nil; l = l.Inner {
		vars = append(vars, l.Var)
	}
	return vars
}

// compile binds every level's bounds and guards to the chain's variable
// order, once per Run/RunVec, so the per-iteration hot path is map-free.
func (g *GenLoop) compile(vars []string) []compiledLevel {
	levels := make([]compiledLevel, 0, len(vars))
	for l := g; l != nil; l = l.Inner {
		cl := compiledLevel{step: l.Step, offset: l.Offset}
		if cl.step < 1 {
			cl.step = 1
		}
		for _, b := range l.Lower {
			cl.lower = append(cl.lower, vecBound{e: b.E.MustBind(vars), div: b.Div})
		}
		for _, b := range l.Upper {
			cl.upper = append(cl.upper, vecBound{e: b.E.MustBind(vars), div: b.Div})
		}
		for _, gd := range l.Guards {
			cl.guards = append(cl.guards, gd.MustBind(vars))
		}
		levels = append(levels, cl)
	}
	return levels
}

// bounds computes the concrete [lo, hi] range of a level at vals,
// respecting the Step/Offset congruence, and evaluates guards. ok is false
// if the range is empty or a guard fails.
func (cl *compiledLevel) bounds(vals []int64) (lo, hi int64, ok bool) {
	for _, gd := range cl.guards {
		if gd.EvalVec(vals) < 0 {
			return 0, 0, false
		}
	}
	first := true
	for _, b := range cl.lower {
		v := b.eval(vals, true)
		if first || v > lo {
			lo = v
		}
		first = false
	}
	first = true
	for _, b := range cl.upper {
		v := b.eval(vals, false)
		if first || v < hi {
			hi = v
		}
		first = false
	}
	if cl.step > 1 {
		// Align lo upward to the congruence class Offset mod Step.
		if r := affine.Mod(lo-cl.offset, cl.step); r != 0 {
			lo += cl.step - r
		}
	}
	return lo, hi, lo <= hi
}

// Run executes the loop chain, calling fn once per iteration with the
// environment binding every loop variable. The map passed to fn is reused;
// copy values you need to keep.
func (g *GenLoop) Run(fn func(env map[string]int64)) {
	vars := g.Vars()
	env := make(map[string]int64, len(vars))
	g.runVec(vars, func(vals []int64) {
		for i, name := range vars {
			env[name] = vals[i]
		}
		fn(env)
	})
}

// RunVec executes the loop chain, calling fn once per iteration with vals
// binding the chain's variables positionally (outermost first, the order
// of Vars). The slice passed to fn is reused across calls; fn must copy it
// to retain it. This is the allocation-free path Run wraps.
func (g *GenLoop) RunVec(fn func(vals []int64)) {
	g.runVec(g.Vars(), fn)
}

func (g *GenLoop) runVec(vars []string, fn func(vals []int64)) {
	levels := g.compile(vars)
	vals := make([]int64, len(vars))
	runLevels(levels, 0, vals, fn)
}

func runLevels(levels []compiledLevel, level int, vals []int64, fn func([]int64)) {
	cl := &levels[level]
	lo, hi, ok := cl.bounds(vals)
	if !ok {
		return
	}
	for v := lo; v <= hi; v += cl.step {
		vals[level] = v
		if level == len(levels)-1 {
			fn(vals)
		} else {
			runLevels(levels, level+1, vals, fn)
		}
	}
}

// Points runs the loop chain and collects the visited points in variable
// order (outermost loop variable first).
func (g *GenLoop) Points() []affine.Vector {
	var out []affine.Vector
	g.RunVec(func(vals []int64) {
		out = append(out, append(affine.Vector(nil), vals...))
	})
	return out
}

// String renders the loop chain as indented pseudo-code in the style of the
// paper's Fig. 2(c).
func (g *GenLoop) String() string {
	var b strings.Builder
	g.write(&b, 0)
	return b.String()
}

func (g *GenLoop) write(b *strings.Builder, indent int) {
	pad := strings.Repeat("  ", indent)
	for _, gd := range g.Guards {
		fmt.Fprintf(b, "%sif %s >= 0 {\n", pad, gd)
		pad += "  "
		indent++
	}
	lo := renderBounds(g.Lower, true, "max")
	hi := renderBounds(g.Upper, false, "min")
	if g.Step > 1 && len(g.Lower) == 1 && g.Lower[0].Div == 1 && g.Lower[0].E.IsConst() {
		// Fold the congruence anchor into a constant lower bound so the
		// printed loop starts at its first actually-visited value.
		v := g.Lower[0].E.Const
		if r := affine.Mod(v-g.Offset, g.Step); r != 0 {
			v += g.Step - r
		}
		lo = fmt.Sprintf("%d", v)
	}
	fmt.Fprintf(b, "%sfor %s = %s to %s", pad, g.Var, lo, hi)
	if g.Step > 1 {
		fmt.Fprintf(b, " step %d", g.Step)
		if len(g.Lower) != 1 || g.Lower[0].Div != 1 || !g.Lower[0].E.IsConst() {
			fmt.Fprintf(b, " /* %s ≡ %d (mod %d) */", g.Var, g.Offset, g.Step)
		}
	}
	b.WriteString(" {\n")
	if g.Inner != nil {
		g.Inner.write(b, indent+1)
	} else {
		fmt.Fprintf(b, "%s  <body>\n", pad)
	}
	fmt.Fprintf(b, "%s}\n", pad)
	for range g.Guards {
		indent--
		fmt.Fprintf(b, "%s}\n", strings.Repeat("  ", indent))
	}
}

func renderBounds(bs []Bound, ceil bool, comb string) string {
	if len(bs) == 1 {
		return bs[0].render(ceil)
	}
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = b.render(ceil)
	}
	return comb + "(" + strings.Join(parts, ", ") + ")"
}
