package iset

import (
	"math/rand"
	"strings"
	"testing"

	"diskreuse/internal/affine"
)

// box builds 0 <= i <= n-1 for each var.
func box(t *testing.T, n int64, vars ...string) *Domain {
	t.Helper()
	d := NewDomain(vars...)
	for _, v := range vars {
		if err := d.AddRange(v, affine.Constant(0), affine.Constant(n-1)); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestDomainBox(t *testing.T) {
	d := box(t, 3, "i", "j")
	pts := d.Points()
	if len(pts) != 9 {
		t.Fatalf("points = %v", pts)
	}
	if !pts[0].Equal(affine.NewVector(0, 0)) || !pts[8].Equal(affine.NewVector(2, 2)) {
		t.Errorf("corner points wrong: %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Compare(pts[i]) >= 0 {
			t.Fatal("not lexicographic")
		}
	}
	if d.Count() != 9 || d.IsEmpty() {
		t.Error("Count/IsEmpty wrong")
	}
}

func TestDomainTriangle(t *testing.T) {
	// { [i,j] : 0<=i<=4, 0<=j<=i } — triangular, 15 points.
	d := box(t, 5, "i", "j")
	if err := d.AddLE(affine.Var("j"), affine.Var("i")); err != nil {
		t.Fatal(err)
	}
	if d.Count() != 15 {
		t.Errorf("Count = %d, want 15", d.Count())
	}
	for _, p := range d.Points() {
		if p[1] > p[0] {
			t.Errorf("point %v violates j <= i", p)
		}
	}
}

func TestDomainDiagonalSlice(t *testing.T) {
	// { [i,j] : 0<=i,j<=9, 5 <= i+j <= 7 }
	d := box(t, 10, "i", "j")
	sum := affine.Var("i").Add(affine.Var("j"))
	if err := d.AddLE(affine.Constant(5), sum); err != nil {
		t.Fatal(err)
	}
	if err := d.AddLE(sum, affine.Constant(7)); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if s := i + j; s >= 5 && s <= 7 {
				want++
			}
		}
	}
	if got := int(d.Count()); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	for _, p := range d.Points() {
		if !d.Contains(p) {
			t.Errorf("Contains(%v) false for enumerated point", p)
		}
	}
}

func TestDomainEmpty(t *testing.T) {
	d := box(t, 4, "i")
	if err := d.AddGE(affine.Var("i").Sub(affine.Constant(10))); err != nil { // i >= 10
		t.Fatal(err)
	}
	if !d.IsEmpty() {
		t.Error("should be empty")
	}
}

func TestDomainEQ(t *testing.T) {
	d := box(t, 10, "i", "j")
	// i + j == 6
	if err := d.AddEQ(affine.Var("i").Add(affine.Var("j")).AddConst(-6)); err != nil {
		t.Fatal(err)
	}
	pts := d.Points()
	if len(pts) != 7 {
		t.Fatalf("points = %v", pts)
	}
	for _, p := range pts {
		if p[0]+p[1] != 6 {
			t.Errorf("point %v violates i+j==6", p)
		}
	}
}

func TestDomainErrors(t *testing.T) {
	d := NewDomain("i")
	if err := d.AddGE(affine.Var("z")); err == nil {
		t.Error("unknown variable must fail")
	}
	a := box(t, 3, "i")
	b := box(t, 3, "j")
	if _, err := a.Intersect(b); err == nil {
		t.Error("mismatched vars must fail")
	}
	c := box(t, 3, "i")
	got, err := a.Intersect(c)
	if err != nil || got.Count() != 3 {
		t.Errorf("intersect = %v, %v", got, err)
	}
	// Codegen over unbounded variable fails.
	u := NewDomain("i")
	if err := u.AddGE(affine.Var("i")); err != nil {
		t.Fatal(err)
	}
	if _, err := Codegen(u); err == nil {
		t.Error("unbounded codegen must fail")
	}
	if _, err := Codegen(NewDomain()); err == nil {
		t.Error("no-var codegen must fail")
	}
}

// Property: enumeration equals brute force over random constraint systems.
func TestQuickEnumerateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vars := []string{"i", "j", "k"}
	for trial := 0; trial < 60; trial++ {
		d := box(t, 6, vars...)
		ncons := rng.Intn(4)
		for c := 0; c < ncons; c++ {
			e := affine.Constant(int64(rng.Intn(13) - 4))
			for _, v := range vars {
				e = e.Add(affine.Term(v, int64(rng.Intn(5)-2)))
			}
			if err := d.AddGE(e); err != nil {
				t.Fatal(err)
			}
		}
		want := map[string]bool{}
		var cnt int
		for i := int64(0); i < 6; i++ {
			for j := int64(0); j < 6; j++ {
				for k := int64(0); k < 6; k++ {
					p := affine.NewVector(i, j, k)
					if d.Contains(p) {
						want[p.String()] = true
						cnt++
					}
				}
			}
		}
		pts := d.Points()
		if len(pts) != cnt {
			t.Fatalf("trial %d: enumerated %d points, brute force %d\n%s", trial, len(pts), cnt, d)
		}
		for _, p := range pts {
			if !want[p.String()] {
				t.Fatalf("trial %d: spurious point %v", trial, p)
			}
		}
	}
}

// Property: codegen'd loops visit exactly the domain's points, in order.
func TestQuickCodegenMatchesEnumerate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vars := []string{"i", "j"}
	for trial := 0; trial < 60; trial++ {
		d := box(t, 8, vars...)
		for c := 0; c < rng.Intn(3); c++ {
			e := affine.Constant(int64(rng.Intn(17) - 6))
			for _, v := range vars {
				e = e.Add(affine.Term(v, int64(rng.Intn(7)-3)))
			}
			if err := d.AddGE(e); err != nil {
				t.Fatal(err)
			}
		}
		g, err := Codegen(d)
		if err != nil {
			t.Fatal(err)
		}
		got := g.Points()
		want := d.Points()
		if len(got) != len(want) {
			t.Fatalf("trial %d: codegen %d points, domain %d\n%s", trial, len(got), len(want), g)
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d: point %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestGenLoopStride(t *testing.T) {
	// Stripe-style loop: for s = 1 to 13 step 4 anchored at offset 1.
	d := NewDomain("s")
	if err := d.AddRange("s", affine.Constant(0), affine.Constant(13)); err != nil {
		t.Fatal(err)
	}
	g, err := Codegen(d)
	if err != nil {
		t.Fatal(err)
	}
	g.Step = 4
	g.Offset = 1
	var got []int64
	g.Run(func(env map[string]int64) { got = append(got, env["s"]) })
	want := []int64{1, 5, 9, 13}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestGenLoopStringAndGuards(t *testing.T) {
	// A domain with a divided bound: 0 <= i <= 10, 2i <= 9 → i <= floordiv(9,2).
	d := NewDomain("i", "j")
	if err := d.AddRange("i", affine.Constant(0), affine.Constant(10)); err != nil {
		t.Fatal(err)
	}
	if err := d.AddGE(affine.Constant(9).Sub(affine.Term("i", 2))); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRange("j", affine.Var("i"), affine.Constant(6)); err != nil {
		t.Fatal(err)
	}
	g, err := Codegen(d)
	if err != nil {
		t.Fatal(err)
	}
	s := g.String()
	if !strings.Contains(s, "for i") || !strings.Contains(s, "for j") {
		t.Errorf("render missing loops:\n%s", s)
	}
	if !strings.Contains(s, "<body>") {
		t.Errorf("render missing body:\n%s", s)
	}
	// Executed points must match the domain.
	if got, want := len(g.Points()), int(d.Count()); got != want {
		t.Errorf("points %d, want %d", got, want)
	}
	// i range is 0..4 (2i <= 9).
	for _, p := range g.Points() {
		if p[0] > 4 {
			t.Errorf("point %v escapes divided bound", p)
		}
	}
}

func TestDomainString(t *testing.T) {
	d := box(t, 2, "i")
	s := d.String()
	if !strings.Contains(s, "[i]") || !strings.Contains(s, ">= 0") {
		t.Errorf("String = %q", s)
	}
	if got := NewDomain("x").String(); got != "{ [x] }" {
		t.Errorf("String = %q", got)
	}
}

func TestNormalizeTightens(t *testing.T) {
	// 2i - 3 >= 0 normalizes to i - 2 >= 0 (integer tightening).
	e := normalize(affine.Term("i", 2).AddConst(-3))
	want := affine.Var("i").AddConst(-2)
	if !e.Equal(want) {
		t.Errorf("normalize = %v, want %v", e, want)
	}
}

// RunVec is the slice-env path Run wraps; both must visit identical
// iterations in identical order, including strided and guarded chains.
func TestRunVecMatchesRun(t *testing.T) {
	d := NewDomain("i", "j")
	if err := d.AddRange("i", affine.Constant(0), affine.Constant(9)); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRange("j", affine.Var("i"), affine.Constant(12)); err != nil {
		t.Fatal(err)
	}
	g, err := Codegen(d)
	if err != nil {
		t.Fatal(err)
	}
	g.Step = 2 // stride the outer loop to cover the congruence path
	var fromRun []affine.Vector
	vars := g.Vars()
	g.Run(func(env map[string]int64) {
		v := make(affine.Vector, len(vars))
		for k, name := range vars {
			v[k] = env[name]
		}
		fromRun = append(fromRun, v)
	})
	var fromVec []affine.Vector
	g.RunVec(func(vals []int64) {
		fromVec = append(fromVec, append(affine.Vector(nil), vals...))
	})
	if len(fromRun) == 0 || len(fromRun) != len(fromVec) {
		t.Fatalf("Run visited %d, RunVec %d", len(fromRun), len(fromVec))
	}
	for k := range fromRun {
		if !fromRun[k].Equal(fromVec[k]) {
			t.Fatalf("iteration %d: Run %v, RunVec %v", k, fromRun[k], fromVec[k])
		}
	}
}
