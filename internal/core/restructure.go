// Package core implements the paper's primary contribution: compiler-
// directed code restructuring that maximizes disk reuse (§5). Given the
// disk layout of the arrays and the exact iteration-level dependence graph,
// it reorders the union of all loop iterations so that accesses to each
// disk (I/O node) are clustered: all schedulable iterations touching disk 0
// run first, then disk 1, and so on, revisiting disks only when data
// dependences force it — the algorithm of Fig. 3, generalized from the
// paper's pseudo-code to arbitrary dependence structures.
package core

import (
	"context"
	"fmt"

	"diskreuse/internal/conc"
	"diskreuse/internal/interp"
	"diskreuse/internal/layout"
	"diskreuse/internal/obs"
	"diskreuse/internal/sema"
)

// Schedule is an execution order over the global iteration ids of a Space.
type Schedule struct {
	// Order lists global iteration ids in execution order.
	Order []int
	// Disk[k] is the primary disk of Order[k] (the disk whose cluster the
	// iteration was scheduled under).
	Disk []int
	// Space is the iteration space the schedule orders.
	Space *interp.Space
}

// Len returns the number of scheduled iterations.
func (s *Schedule) Len() int { return len(s.Order) }

// Restructurer prepares a program for disk-reuse scheduling: it enumerates
// the iteration space, builds the exact dependence graph, and attributes
// every iteration to its primary disk.
type Restructurer struct {
	Prog   *sema.Program
	Layout *layout.Layout
	Space  *interp.Space
	Graph  *interp.DepGraph

	// primary[id] is the iteration's primary disk: the disk holding the
	// element of its first (lexical) reference, per the paper's convention
	// that an iteration touching several disks is clustered by one of them.
	primary []int
	// touched[id] lists every distinct disk the iteration accesses.
	touched [][]int8
}

// Options configures how the front-end analyses run. The zero value is the
// serial configuration New has always used.
type Options struct {
	// Jobs bounds the worker pool of the analysis passes (iteration-space
	// enumeration, subscript validation, dependence build, disk
	// attribution). Zero selects runtime.GOMAXPROCS(0); 1 forces the fully
	// serial path; negative values are rejected — the same convention as
	// sim.Config.Jobs and exp.Options.Jobs. Every pass produces bit-
	// identical results at any Jobs value.
	Jobs int
	// Engine selects the front-end execution engine: the stride-compiled
	// kernels (interp.EngineCompiled, the zero value) or the tree-walk
	// reference oracle (interp.EngineInterp). Both produce bit-identical
	// Space, DepGraph, disk attribution, and schedules.
	Engine interp.Engine
	// Span, when non-nil, receives one child span per analysis pass
	// ("space", "validate", "deps", "attribute-disks"); on the compiled
	// engine the space pass has a "compile" child covering kernel lowering.
	Span *obs.Span
}

// New builds a Restructurer for prog with the given layout. The layout may
// be nil, in which case a fresh one with the default page size is built.
func New(prog *sema.Program, l *layout.Layout) (*Restructurer, error) {
	return NewCtx(context.Background(), prog, l, Options{})
}

// NewCtx is New with cancellation and a worker budget: the four analysis
// passes run on at most opt.Jobs workers and stop early if ctx is
// canceled. The resulting Restructurer is identical to New's at any Jobs.
func NewCtx(ctx context.Context, prog *sema.Program, l *layout.Layout, opt Options) (*Restructurer, error) {
	if opt.Jobs < 0 {
		return nil, fmt.Errorf("core: Jobs %d must be >= 0 (0 selects GOMAXPROCS, 1 forces the serial path)", opt.Jobs)
	}
	var err error
	if l == nil {
		l, err = layout.New(prog, 0)
		if err != nil {
			return nil, err
		}
	}
	jobs := opt.Jobs
	sp := opt.Span.Child("space")
	space, err := interp.BuildSpaceOpts(ctx, prog, interp.BuildOptions{
		Jobs:   jobs,
		Engine: opt.Engine,
		Span:   sp,
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = opt.Span.Child("validate")
	err = space.ValidateCtx(ctx, jobs)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = opt.Span.Child("deps")
	graph, err := space.BuildDepsCtx(ctx, jobs)
	sp.End()
	if err != nil {
		return nil, err
	}
	r := &Restructurer{
		Prog:   prog,
		Layout: l,
		Space:  space,
		Graph:  graph,
	}
	sp = opt.Span.Child("attribute-disks")
	err = r.attributeDisks(ctx, jobs)
	sp.End()
	if err != nil {
		return nil, err
	}
	return r, nil
}

// attributeDisks fills primary and touched for every iteration, chunked
// over the iteration range on at most jobs workers. Layout.ElemDisk is a
// pure function of the layout, so chunks share it safely; each chunk
// writes only its own slots, and errors are reported in iteration order
// (the first chunk's error wins) so the message never depends on worker
// scheduling.
func (r *Restructurer) attributeDisks(ctx context.Context, jobs int) error {
	n := r.Space.NumIterations()
	r.primary = make([]int, n)
	r.touched = make([][]int8, n)
	chunks := conc.Chunks(n, conc.ChunkCount(n, jobs, 1<<10))
	errs := make([]error, len(chunks))
	poolErr := conc.ForEach(ctx, len(chunks), jobs, func(_ context.Context, k int) error {
		str := r.Space.NewStreamer()
		var buf []interp.Access
		for id := chunks[k][0]; id < chunks[k][1]; id++ {
			buf = str.Accesses(id, buf[:0])
			if len(buf) == 0 {
				errs[k] = fmt.Errorf("core: iteration %v performs no accesses", r.Space.IterAt(id))
				return errs[k]
			}
			var disks []int8
			for j, a := range buf {
				d, err := r.Layout.ElemDisk(a.Array, a.Lin)
				if err != nil {
					errs[k] = err
					return err
				}
				if j == 0 {
					r.primary[id] = d
				}
				found := false
				for _, x := range disks {
					if x == int8(d) {
						found = true
						break
					}
				}
				if !found {
					disks = append(disks, int8(d))
				}
			}
			r.touched[id] = disks
		}
		return nil
	})
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return poolErr
}

// PrimaryDisk returns the primary disk of global iteration id.
func (r *Restructurer) PrimaryDisk(id int) int { return r.primary[id] }

// TouchedDisks returns every disk the iteration accesses.
func (r *Restructurer) TouchedDisks(id int) []int8 { return r.touched[id] }

// OriginalSchedule returns the untransformed program-order schedule, the
// baseline every experiment normalizes against.
func (r *Restructurer) OriginalSchedule() *Schedule {
	n := r.Space.NumIterations()
	s := &Schedule{
		Order: make([]int, n),
		Disk:  make([]int, n),
		Space: r.Space,
	}
	for i := 0; i < n; i++ {
		s.Order[i] = i
		s.Disk[i] = r.primary[i]
	}
	return s
}

// idHeap is a min-heap of iteration ids (original program order), used as
// the per-disk ready queue. It is a hand-rolled binary heap rather than a
// container/heap adapter: the scheduler pushes one id per iteration, and
// boxing each into an interface value dominated scheduling time. Ids are
// unique, so min-extraction order — and hence the schedule — is identical
// to the generic heap's.
type idHeap []int

func (h *idHeap) push(id int) {
	q := append(*h, id)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent] <= q[i] {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	*h = q
}

func (h *idHeap) pop() int {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		if r := l + 1; r < last && q[r] < q[l] {
			l = r
		}
		if q[i] <= q[l] {
			break
		}
		q[i], q[l] = q[l], q[i]
		i = l
	}
	*h = q
	return top
}

// DiskReuseSchedule computes the restructured execution order of Fig. 3:
//
//	Q = all iterations; d = 0
//	while Q not empty:
//	    Q_d = all iterations in Q that access disk d and whose
//	          dependences are already satisfied (including transitively
//	          by earlier members of Q_d)
//	    schedule Q_d in original order; Q -= Q_d
//	    d = (d+1) mod D
//
// The implementation drains a per-disk ready queue: while processing disk
// d, iterations that become ready and belong to d are scheduled in the same
// visit, maximizing cluster length; iterations becoming ready for other
// disks wait for their disk's turn. With no dependences every disk is
// visited exactly once (perfect disk reuse); with dependences disks are
// revisited only as the while-loop of Fig. 3 requires.
func (r *Restructurer) DiskReuseSchedule() (*Schedule, error) {
	return r.scheduleSubset(nil)
}

// scheduleSubset runs the Fig. 3 scheduler over a subset of iterations
// (nil means all). Dependence edges with both endpoints in the subset are
// enforced; edges entering the subset from outside are assumed satisfied
// (the caller is responsible for inter-subset ordering, e.g. barriers).
func (r *Restructurer) scheduleSubset(subset []int) (*Schedule, error) {
	n := r.Space.NumIterations()
	inSubset := make([]bool, n)
	var members []int
	if subset == nil {
		members = make([]int, n)
		for i := range members {
			members[i] = i
			inSubset[i] = true
		}
	} else {
		members = subset
		for _, id := range subset {
			if id < 0 || id >= n {
				return nil, fmt.Errorf("core: subset id %d out of range", id)
			}
			if inSubset[id] {
				return nil, fmt.Errorf("core: subset id %d duplicated", id)
			}
			inSubset[id] = true
		}
	}
	order, disks, err := scheduleFig3(r.Layout.NumDisks(), members, inSubset,
		r.primary, r.Graph.Preds, r.Graph.Succs)
	if err != nil {
		return nil, err
	}
	return &Schedule{Order: order, Disk: disks, Space: r.Space}, nil
}

// scheduleFig3 is the algorithm of the paper's Fig. 3, generalized to an
// arbitrary dependence DAG: starting from disk 0, schedule every ready
// iteration whose primary disk is the current one (in original program
// order, admitting iterations that become ready during the same visit),
// then move to the next disk, cycling until all iterations are scheduled.
// Edges with an endpoint outside the member set are ignored.
func scheduleFig3(numDisks int, members []int, inSet []bool,
	primary []int, preds, succs [][]int32) (order, disks []int, err error) {

	indeg := make([]int, len(inSet))
	for _, id := range members {
		for _, p := range preds[id] {
			if inSet[p] {
				indeg[id]++
			}
		}
	}
	queues := make([]idHeap, numDisks)
	pending := 0
	for _, id := range members {
		if indeg[id] == 0 {
			queues[primary[id]].push(id)
		}
		pending++
	}

	order = make([]int, 0, len(members))
	disks = make([]int, 0, len(members))
	d := 0
	idleRounds := 0
	for pending > 0 {
		if len(queues[d]) == 0 {
			d = (d + 1) % numDisks
			idleRounds++
			if idleRounds > numDisks {
				// A full cycle with nothing ready means a dependence from
				// outside the set was never satisfied — a cycle cannot
				// exist because edges point forward in program order.
				return nil, nil, fmt.Errorf("core: scheduling stuck with %d iterations pending (cross-subset dependence?)", pending)
			}
			continue
		}
		idleRounds = 0
		for len(queues[d]) > 0 {
			id := queues[d].pop()
			order = append(order, id)
			disks = append(disks, d)
			pending--
			for _, v := range succs[id] {
				if !inSet[v] {
					continue
				}
				indeg[v]--
				if indeg[v] == 0 {
					queues[primary[v]].push(int(v))
				}
			}
		}
		d = (d + 1) % numDisks
	}
	return order, disks, nil
}

// ScheduleFor runs disk-reuse scheduling over an explicit iteration subset
// (used by the multiprocessor path to restructure each processor's assigned
// iterations separately, §6.2).
func (r *Restructurer) ScheduleFor(subset []int) (*Schedule, error) {
	return r.scheduleSubset(subset)
}

// ScheduleWithPrimary runs the Fig. 3 scheduler over the whole iteration
// space under a caller-supplied primary-disk attribution and disk count,
// instead of the one the Restructurer computed from its own layout. The
// iteration space and dependence graph are layout-independent, so a layout
// search can build the Restructurer once and reschedule per candidate
// layout by re-deriving only the primary vector — exactly the schedule a
// fresh Restructurer over that layout would produce, without re-running
// the front end. primary must have one entry per iteration, each in
// [0, numDisks).
func (r *Restructurer) ScheduleWithPrimary(numDisks int, primary []int) (*Schedule, error) {
	return r.ScheduleSubsetWithPrimary(numDisks, primary, nil)
}

// ScheduleSubsetWithPrimary is ScheduleWithPrimary restricted to an
// iteration subset (nil means all): dependence edges inside the subset are
// enforced, edges entering from outside are assumed satisfied by the
// caller's inter-subset ordering (e.g. phase barriers). This is the
// per-phase leg of the phase-aware layout search.
func (r *Restructurer) ScheduleSubsetWithPrimary(numDisks int, primary []int, subset []int) (*Schedule, error) {
	n := r.Space.NumIterations()
	if numDisks <= 0 {
		return nil, fmt.Errorf("core: numDisks %d must be positive", numDisks)
	}
	if len(primary) != n {
		return nil, fmt.Errorf("core: primary vector has %d entries for %d iterations", len(primary), n)
	}
	inSubset := make([]bool, n)
	var members []int
	if subset == nil {
		members = make([]int, n)
		for i := range members {
			members[i] = i
			inSubset[i] = true
		}
	} else {
		members = subset
		for _, id := range subset {
			if id < 0 || id >= n {
				return nil, fmt.Errorf("core: subset id %d out of range", id)
			}
			if inSubset[id] {
				return nil, fmt.Errorf("core: subset id %d duplicated", id)
			}
			inSubset[id] = true
		}
	}
	for _, id := range members {
		if d := primary[id]; d < 0 || d >= numDisks {
			return nil, fmt.Errorf("core: primary disk %d of iteration %d outside 0..%d", d, id, numDisks-1)
		}
	}
	order, disks, err := scheduleFig3(numDisks, members, inSubset,
		primary, r.Graph.Preds, r.Graph.Succs)
	if err != nil {
		return nil, err
	}
	return &Schedule{Order: order, Disk: disks, Space: r.Space}, nil
}

// Verify checks the schedule against the exact dependence graph.
func (r *Restructurer) Verify(s *Schedule) error {
	return r.Space.VerifySchedule(r.Graph, s.Order)
}
