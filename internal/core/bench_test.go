package core

import (
	"context"
	"testing"

	"diskreuse/internal/apps"
)

func BenchmarkAttributeDisks(b *testing.B) {
	app, err := apps.ByName("RSense", apps.Small)
	if err != nil {
		b.Fatal(err)
	}
	p, err := app.Compile()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	r, err := NewCtx(ctx, p, nil, Options{Jobs: 0})
	if err != nil {
		b.Fatal(err)
	}
	for _, bj := range []struct {
		name string
		jobs int
	}{
		{"serial", 1},
		{"jobs4", 4},
	} {
		b.Run(bj.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := r.attributeDisks(ctx, bj.jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
