package core

import (
	"fmt"
	"strings"

	"diskreuse/internal/affine"
	"diskreuse/internal/iset"
	"diskreuse/internal/sema"
)

// stripeVar is the generated stripe-loop iterator, named to avoid colliding
// with user iterators (DRL identifiers are user-chosen, but the paper's
// generated code uses the same convention; collisions are detected below).
const stripeVar = "ss"

// primaryRef returns the reference that determines an iteration's primary
// disk: the first read of the first statement, or its write if the
// statement reads nothing. This matches the access order the Restructurer
// uses for disk attribution.
func primaryRef(n *sema.Nest) *sema.Ref {
	st := n.Stmts[0]
	if len(st.Reads) > 0 {
		return st.Reads[0]
	}
	return st.Write
}

// linExpr builds the affine expression for the row-major linear element
// index of ref as a function of the nest iterators.
func linExpr(ref *sema.Ref) affine.Expr {
	dims := ref.Array.Dims
	strides := make([]int64, len(dims))
	st := int64(1)
	for k := len(dims) - 1; k >= 0; k-- {
		strides[k] = st
		st *= dims[k]
	}
	e := affine.Constant(0)
	for k, sub := range ref.Subs {
		e = e.Add(sub.Scale(strides[k]))
	}
	return e
}

// CodegenNestOnDisk generates the loop nest that enumerates Q_{d} for one
// source nest: the iterations whose primary reference touches disk d,
// expressed as an outer stripe loop (step = stripe factor) around the
// original iterators with tightened bounds — the Fig. 2(c) shape the paper
// obtains from Omega's codegen. It returns (nil, nil) when the nest's
// primary array has no data on disk d.
func (r *Restructurer) CodegenNestOnDisk(n *sema.Nest, d int) (*iset.GenLoop, error) {
	ref := primaryRef(n)
	arr := ref.Array
	s := arr.Stripe
	rel := d - s.Start
	if rel < 0 || rel >= s.Factor {
		return nil, nil
	}
	for _, l := range n.Loops {
		if l.Step != 1 {
			return nil, fmt.Errorf("core: codegen requires unit-step loops (nest %s, loop %s)", n.Name, l.Var)
		}
		if l.Var == stripeVar {
			return nil, fmt.Errorf("core: nest %s uses reserved iterator %q", n.Name, stripeVar)
		}
	}
	eps := s.Unit / arr.ElemSize // elements per stripe
	numStripes := (arr.Bytes() + s.Unit - 1) / s.Unit
	if int64(rel) >= numStripes {
		return nil, nil
	}

	vars := append([]string{stripeVar}, n.Iterators()...)
	dom := iset.NewDomain(vars...)
	if err := dom.AddRange(stripeVar, affine.Constant(0), affine.Constant(numStripes-1)); err != nil {
		return nil, err
	}
	for _, l := range n.Loops {
		if err := dom.AddRange(l.Var, l.Lo, l.Hi); err != nil {
			return nil, err
		}
	}
	// eps*ss <= lin(ref) <= eps*ss + eps - 1
	lin := linExpr(ref)
	sTerm := affine.Term(stripeVar, eps)
	if err := dom.AddGE(lin.Sub(sTerm)); err != nil {
		return nil, err
	}
	if err := dom.AddGE(sTerm.AddConst(eps - 1).Sub(lin)); err != nil {
		return nil, err
	}
	g, err := iset.Codegen(dom)
	if err != nil {
		return nil, err
	}
	g.Step = int64(s.Factor)
	g.Offset = int64(rel)
	return g, nil
}

// RestructuredPseudoCode renders the per-disk generated loop nests for the
// whole program: for each disk in turn, the loops enumerating each nest's
// iterations on that disk. This is the display form of the ideal (fully
// dependence-free) restructuring; the authoritative execution order in the
// presence of dependences is DiskReuseSchedule.
func (r *Restructurer) RestructuredPseudoCode() (string, error) {
	var b strings.Builder
	for d := 0; d < r.Layout.NumDisks(); d++ {
		fmt.Fprintf(&b, "// ---- iterations accessing disk%d ----\n", d)
		any := false
		for _, n := range r.Prog.Nests {
			g, err := r.CodegenNestOnDisk(n, d)
			if err != nil {
				return "", err
			}
			if g == nil {
				continue
			}
			any = true
			fmt.Fprintf(&b, "// from nest %s:\n", n.Name)
			b.WriteString(g.String())
		}
		if !any {
			b.WriteString("// (no data on this disk)\n")
		}
	}
	return b.String(), nil
}
