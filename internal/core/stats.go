package core

import (
	"fmt"
	"strings"
)

// ReuseStats summarizes how well a schedule clusters disk accesses — the
// quantity the restructuring maximizes. A "run" is a maximal contiguous
// span of the schedule whose iterations share a primary disk; fewer, longer
// runs mean longer idle periods for the disks not being visited.
type ReuseStats struct {
	Iterations int
	NumDisks   int
	// Runs is the number of maximal same-disk spans in the schedule.
	Runs int
	// Switches is Runs-1: how many times the active disk changes.
	Switches int
	// AvgRunLen is Iterations/Runs.
	AvgRunLen float64
	// DiskVisits[d] counts the runs that visit disk d. Perfect disk reuse
	// (the ideal of §5) visits each used disk exactly once.
	DiskVisits []int
	// PerfectReuse is true when every used disk is visited at most once.
	PerfectReuse bool
}

// Stats computes clustering statistics for a schedule produced by a
// Restructurer with numDisks disks.
func Stats(s *Schedule, numDisks int) ReuseStats {
	st := ReuseStats{
		Iterations: len(s.Order),
		NumDisks:   numDisks,
		DiskVisits: make([]int, numDisks),
	}
	prev := -1
	for i := range s.Order {
		d := s.Disk[i]
		if d != prev {
			st.Runs++
			if d >= 0 && d < numDisks {
				st.DiskVisits[d]++
			}
			prev = d
		}
	}
	if st.Runs > 0 {
		st.Switches = st.Runs - 1
		st.AvgRunLen = float64(st.Iterations) / float64(st.Runs)
	}
	st.PerfectReuse = true
	for _, v := range st.DiskVisits {
		if v > 1 {
			st.PerfectReuse = false
			break
		}
	}
	return st
}

func (st ReuseStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "iterations=%d disks=%d runs=%d switches=%d avg_run=%.1f perfect=%v visits=%v",
		st.Iterations, st.NumDisks, st.Runs, st.Switches, st.AvgRunLen, st.PerfectReuse, st.DiskVisits)
	return b.String()
}
