package core

import (
	"math/rand"
	"strings"
	"testing"

	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
)

func build(t *testing.T, src string) *Restructurer {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sema.Analyze(prog, sema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Two nests over one striped array with a producer/consumer dependence.
// The restructurer can still achieve perfect disk reuse by scheduling, per
// disk, the producer iterations before the consumer iterations.
const producerConsumerSrc = `
array A[4096] stripe(unit=4K, factor=4, start=0)
array B[4096] stripe(unit=4K, factor=4, start=0)
nest W { for i = 0 to 4095 { A[i] = B[i]; } }
nest R { for i = 0 to 4095 { B[i] = A[i]; } }
`

func TestPerfectReuseProducerConsumer(t *testing.T) {
	r := build(t, producerConsumerSrc)
	orig := r.OriginalSchedule()
	origStats := Stats(orig, r.Layout.NumDisks())
	// Original order sweeps the stripes in file order twice: 16 runs.
	if origStats.Runs != 16 {
		t.Errorf("original runs = %d, want 16\n%s", origStats.Runs, origStats)
	}

	s, err := r.DiskReuseSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(s); err != nil {
		t.Fatalf("restructured schedule illegal: %v", err)
	}
	st := Stats(s, r.Layout.NumDisks())
	if !st.PerfectReuse {
		t.Errorf("expected perfect reuse, got %s", st)
	}
	if st.Runs != 4 {
		t.Errorf("runs = %d, want 4 (one visit per disk)", st.Runs)
	}
	if st.AvgRunLen <= origStats.AvgRunLen {
		t.Errorf("restructuring did not lengthen runs: %v vs %v", st.AvgRunLen, origStats.AvgRunLen)
	}
}

func TestChainForcesOriginalOrder(t *testing.T) {
	// A full dependence chain leaves no freedom: the schedule must be the
	// original order, revisiting disks as the data marches across stripes.
	r := build(t, `
array A[4096] stripe(unit=4K, factor=4, start=0)
nest L { for i = 1 to 4095 { A[i] = A[i-1]; } }
`)
	s, err := r.DiskReuseSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(s); err != nil {
		t.Fatal(err)
	}
	for k, id := range s.Order {
		if id != k {
			t.Fatalf("chain schedule must be program order; position %d = %d", k, id)
		}
	}
	st := Stats(s, r.Layout.NumDisks())
	if st.PerfectReuse {
		t.Error("chain across stripes cannot have perfect reuse")
	}
}

func TestFigure4StyleRevisit(t *testing.T) {
	// Mirrors the structure of Fig. 4: most iterations are free, but a few
	// dependences force some disk-0 iterations to wait for disk-1
	// iterations, so disk 0 is visited twice (the while-loop of Fig. 3).
	//
	// Layout: A has 4 stripes on 4 disks, 512 elems each. Nest P writes
	// B-elements on disk 1. Nest C's iterations 0..511 (disk 0 via A) read
	// those B elements written by P, creating disk1 -> disk0 dependences
	// for some iterations.
	r := build(t, `
array A[2048] stripe(unit=4K, factor=4, start=0)
array B[2048] stripe(unit=4K, factor=4, start=0)
nest P { for i = 512 to 1023 { B[i] = A[i]; } }
nest C { for i = 0 to 511 { A[i] = B[i+512]; } }
nest D { for i = 1024 to 2047 { A[i] = B[i]; } }
`)
	s, err := r.DiskReuseSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(s); err != nil {
		t.Fatal(err)
	}
	st := Stats(s, r.Layout.NumDisks())
	// Disk 0 hosts C's iterations (A[0..511] stripe 0) but every one of
	// them depends on P (disk 1, since both A[i] and B[i] for i in
	// 512..1023 are on stripe 1 = disk 1). So the first visit to disk 0
	// schedules nothing, disk 1 runs P, then disk 0 runs C on the second
	// round: disk 0's cluster appears after disk 1's.
	if st.PerfectReuse {
		// With the queue-draining scheduler the empty first visit does not
		// produce a run, so "perfect reuse" can still hold; the essential
		// property is legality plus clustering. Accept but require few runs.
		if st.Runs > 4 {
			t.Errorf("unexpected run count %d", st.Runs)
		}
	}
	// C (global ids 512..1023) must come after all of P (ids 0..511).
	pos := make([]int, len(s.Order))
	for p, id := range s.Order {
		pos[id] = p
	}
	maxP, minC := 0, len(s.Order)
	for id := 0; id < 512; id++ {
		if pos[id] > maxP {
			maxP = pos[id]
		}
	}
	for id := 512; id < 1024; id++ {
		if pos[id] < minC {
			minC = pos[id]
		}
	}
	if maxP > minC {
		t.Errorf("consumer scheduled before producer: maxP=%d minC=%d", maxP, minC)
	}
}

func TestScheduleForSubset(t *testing.T) {
	r := build(t, producerConsumerSrc)
	// Subset: the first half of each nest (ids 0..2047 and 4096..6143).
	var subset []int
	for i := 0; i < 2048; i++ {
		subset = append(subset, i)
	}
	for i := 4096; i < 6144; i++ {
		subset = append(subset, i)
	}
	s, err := r.ScheduleFor(subset)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(subset) {
		t.Fatalf("scheduled %d, want %d", s.Len(), len(subset))
	}
	seen := map[int]bool{}
	for _, id := range s.Order {
		if seen[id] {
			t.Fatalf("iteration %d scheduled twice", id)
		}
		seen[id] = true
	}
	for _, id := range subset {
		if !seen[id] {
			t.Fatalf("iteration %d missing", id)
		}
	}
	// Within-subset dependences respected: R's half (4096+i) after W's (i).
	pos := map[int]int{}
	for p, id := range s.Order {
		pos[id] = p
	}
	for i := 0; i < 2048; i++ {
		if pos[4096+i] < pos[i] {
			t.Fatalf("subset dependence violated for i=%d", i)
		}
	}

	if _, err := r.ScheduleFor([]int{0, 0}); err == nil {
		t.Error("duplicate subset ids must fail")
	}
	if _, err := r.ScheduleFor([]int{-1}); err == nil {
		t.Error("out-of-range subset ids must fail")
	}
}

func TestPrimaryAndTouchedDisks(t *testing.T) {
	r := build(t, `
array A[1024] stripe(unit=4K, factor=2, start=0)
array B[1024] stripe(unit=4K, factor=2, start=0)
nest L { for i = 0 to 511 { A[i] = B[i+512]; } }
`)
	// Iteration 0 reads B[512] (stripe 1 -> disk 1) and writes A[0]
	// (stripe 0 -> disk 0). Primary = first access = the read (disk 1).
	if d := r.PrimaryDisk(0); d != 1 {
		t.Errorf("primary disk = %d, want 1", d)
	}
	ds := r.TouchedDisks(0)
	if len(ds) != 2 {
		t.Errorf("touched = %v", ds)
	}
}

// Property: for random programs, the disk-reuse schedule is always a legal
// permutation and never clusters worse than... (it can tie the original in
// fully-constrained cases, so only legality and permutation are asserted,
// plus non-regression on run count for dependence-free programs).
func TestQuickRandomProgramsLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shapes := []string{
		`
array A[%d] stripe(unit=4K, factor=4, start=0)
array B[%d] stripe(unit=4K, factor=4, start=0)
nest L1 { for i = 0 to %d { A[i] = B[i]; } }
nest L2 { for i = 1 to %d { B[i] = A[i-1] + B[i-1]; } }
`,
		`
array A[%d] stripe(unit=4K, factor=3, start=0)
array B[%d] stripe(unit=4K, factor=3, start=0)
nest L1 { for i = 0 to %d { B[i] = A[i]; } }
nest L2 { for i = 0 to %d { A[i] = B[i]; } }
`,
	}
	for trial := 0; trial < 6; trial++ {
		n := 1024 + 512*rng.Intn(3)
		shape := shapes[rng.Intn(len(shapes))]
		src := sprintfN(shape, n, n, n-1, n-1)
		r := build(t, src)
		s, err := r.DiskReuseSchedule()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := r.Verify(s); err != nil {
			t.Fatalf("trial %d: %v\nprogram:\n%s", trial, err, src)
		}
	}
}

func sprintfN(format string, args ...int) string {
	out := format
	for _, a := range args {
		out = strings.Replace(out, "%d", itoa(a), 1)
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestCodegenPartitionsIterationSpace(t *testing.T) {
	r := build(t, `
array A[64][64] stripe(unit=4K, factor=4, start=0)
nest L {
  for i = 0 to 63 {
    for j = 0 to 63 {
      A[i][j] = A[i][j];
    }
  }
}
`)
	n := r.Prog.Nests[0]
	total := 0
	seen := map[string]int{}
	for d := 0; d < r.Layout.NumDisks(); d++ {
		g, err := r.CodegenNestOnDisk(n, d)
		if err != nil {
			t.Fatal(err)
		}
		if g == nil {
			continue
		}
		for _, p := range g.Points() {
			// p = (ss, i, j); drop the stripe coordinate.
			key := p[1:].String()
			seen[key]++
			total++
			// The generated set must agree with the scheduler's disk
			// attribution: find the iteration's global id (nest has 64x64
			// iterations in row-major order).
			id := int(p[1]*64 + p[2])
			if r.PrimaryDisk(id) != d {
				t.Fatalf("codegen assigned (%d,%d) to disk %d but primary is %d",
					p[1], p[2], d, r.PrimaryDisk(id))
			}
		}
	}
	if total != 64*64 {
		t.Fatalf("codegen covered %d iterations, want %d", total, 64*64)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %s generated %d times", k, c)
		}
	}
}

func TestRestructuredPseudoCode(t *testing.T) {
	r := build(t, producerConsumerSrc)
	code, err := r.RestructuredPseudoCode()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"disk0", "disk3", "nest W", "nest R", "for ss", "step 4"} {
		if !strings.Contains(code, want) {
			t.Errorf("pseudo-code missing %q:\n%s", want, code)
		}
	}
}

func TestCodegenRejectsNonUnitStep(t *testing.T) {
	r := build(t, `
array A[128] stripe(unit=4K, factor=2, start=0)
nest L { for i = 0 to 127 step 2 { read A[i]; } }
`)
	if _, err := r.CodegenNestOnDisk(r.Prog.Nests[0], 0); err == nil {
		t.Error("non-unit step must be rejected by codegen")
	}
	// But scheduling still works.
	s, err := r.DiskReuseSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(s); err != nil {
		t.Fatal(err)
	}
}

func TestStatsString(t *testing.T) {
	r := build(t, producerConsumerSrc)
	s, err := r.DiskReuseSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if got := Stats(s, 4).String(); !strings.Contains(got, "perfect=true") {
		t.Errorf("Stats string = %q", got)
	}
}

func TestValidateRejectsOOB(t *testing.T) {
	prog, err := parser.Parse(`
array A[4] stripe(unit=4K, factor=2, start=0)
nest L { for i = 0 to 7 { read A[i]; } }
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sema.Analyze(prog, sema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, nil); err == nil {
		t.Error("out-of-bounds program must be rejected")
	}
}

// Golden test: the exact Fig. 2(c)-shaped output for a small two-nest
// program over four disks. Guards the codegen text against regressions.
func TestCodegenGolden(t *testing.T) {
	r := build(t, `
array A[4096] stripe(unit=4K, factor=4, start=0)
nest Fwd { for i = 0 to 4095 { A[i] = A[i]; } }
`)
	code, err := r.RestructuredPseudoCode()
	if err != nil {
		t.Fatal(err)
	}
	const golden = `// ---- iterations accessing disk0 ----
// from nest Fwd:
for ss = 0 to 7 step 4 {
  for i = max(0, 512*ss) to min(4095, 512*ss + 511) {
    <body>
  }
}
// ---- iterations accessing disk1 ----
// from nest Fwd:
for ss = 1 to 7 step 4 {
  for i = max(0, 512*ss) to min(4095, 512*ss + 511) {
    <body>
  }
}
// ---- iterations accessing disk2 ----
// from nest Fwd:
for ss = 2 to 7 step 4 {
  for i = max(0, 512*ss) to min(4095, 512*ss + 511) {
    <body>
  }
}
// ---- iterations accessing disk3 ----
// from nest Fwd:
for ss = 3 to 7 step 4 {
  for i = max(0, 512*ss) to min(4095, 512*ss + 511) {
    <body>
  }
}
`
	if code != golden {
		t.Errorf("codegen output changed:\n--- got ---\n%s\n--- want ---\n%s", code, golden)
	}
}

// TestFigure4Exact replays the paper's Fig. 4 walk-through directly on the
// Fig. 3 scheduler: 13 iterations over 4 disks, with dependences from
// iterations 2, 6, and 10 to iterations 9, 7, and 12 (1-indexed, as in the
// figure). The algorithm schedules disk 0's free iterations (1 -> 3),
// moves to disk 1 (2 -> 6 -> 10) instead of waiting for 9, 7, 12, covers
// disks 2 and 3, and only then revisits disk 0 for the now-released
// iterations — the while-loop of Fig. 3 in action.
func TestFigure4Exact(t *testing.T) {
	// Disk assignment (1-indexed iterations):
	//   disk 0: 1, 3, 7, 9, 12    disk 1: 2, 6, 10
	//   disk 2: 4, 8, 13          disk 3: 5, 11
	diskOf := map[int]int{
		1: 0, 3: 0, 7: 0, 9: 0, 12: 0,
		2: 1, 6: 1, 10: 1,
		4: 2, 8: 2, 13: 2,
		5: 3, 11: 3,
	}
	deps := map[int][]int{9: {2}, 7: {6}, 12: {10}} // dst -> srcs
	members := make([]int, 0, 13)
	inSet := make([]bool, 14)
	for id := 1; id <= 13; id++ {
		members = append(members, id)
		inSet[id] = true
	}
	succs := make([][]int32, 14)
	preds := make([][]int32, 14)
	primary := make([]int, 14)
	for id, d := range diskOf {
		primary[id] = d
	}
	for dst, srcs := range deps {
		for _, src := range srcs {
			preds[dst] = append(preds[dst], int32(src))
			succs[src] = append(succs[src], int32(dst))
		}
	}
	order, disks, err := scheduleFig3(4, members, inSet, primary, preds, succs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 2, 6, 10, 4, 8, 13, 5, 11, 7, 9, 12}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Disk visit sequence: 0, 1, 2, 3, then 0 again — disk 0 revisited
	// exactly once, as the figure narrates.
	visits := []int{}
	prev := -1
	for _, d := range disks {
		if d != prev {
			visits = append(visits, d)
			prev = d
		}
	}
	wantVisits := []int{0, 1, 2, 3, 0}
	if len(visits) != len(wantVisits) {
		t.Fatalf("visits = %v", visits)
	}
	for i := range wantVisits {
		if visits[i] != wantVisits[i] {
			t.Fatalf("visits = %v, want %v", visits, wantVisits)
		}
	}
}
