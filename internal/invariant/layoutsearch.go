package invariant

import (
	"fmt"

	"diskreuse/internal/apps"
	"diskreuse/internal/core"
	"diskreuse/internal/disk"
	"diskreuse/internal/layout"
	"diskreuse/internal/layoutopt"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
)

// CheckLayoutSearch is family 8 — layout-search fidelity: the re-attribution
// scoring engine and its beam search are checked on one DRL program.
//
//   - Determinism: a Jobs=1 search and a Jobs=jobs search over the same
//     menus produce bit-identical beams — same survivors in the same order
//     with the same canonical keys, energies, run counts, and disk spans.
//   - Exactness: every beam survivor is re-scored through the independent
//     full pipeline — a fresh parse, semantic analysis, per-array
//     re-striping, restructuring, trace generation, and simulation — and
//     all three energies and the run count must match bit for bit.
//
// Together these are the engine's load-bearing claims: the search may prune
// and memoize however it likes, but what it reports must be exactly what
// the paper's pipeline would have computed, regardless of parallelism.
func CheckLayoutSearch(src string, jobs int) error {
	if jobs < 1 {
		jobs = 8
	}
	app := apps.App{Name: "layoutsearch", Source: src, ComputePerIter: 1e-3}
	// Small menus keep the check cheap; determinism and exactness do not
	// depend on the menu size.
	opt := layoutopt.SearchOptions{
		Units:     []int64{16 << 10, 64 << 10},
		Factors:   []int{2, 4},
		MaxDisks:  6,
		BeamWidth: 4,
		MaxRounds: 3,
	}
	search := func(j int) (*layoutopt.SearchResult, error) {
		e, err := layoutopt.NewEngine(app, 0)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		o := opt
		o.Jobs = j
		return e.Search(o)
	}
	serial, err := search(1)
	if err != nil {
		return fmt.Errorf("search jobs=1: %w", err)
	}
	parallel, err := search(jobs)
	if err != nil {
		return fmt.Errorf("search jobs=%d: %w", jobs, err)
	}

	if len(serial.Beam) != len(parallel.Beam) {
		return fmt.Errorf("beam width diverged across jobs: %d vs %d",
			len(serial.Beam), len(parallel.Beam))
	}
	if serial.Rounds != parallel.Rounds || serial.Candidates != parallel.Candidates {
		return fmt.Errorf("search shape diverged across jobs: rounds %d/%d candidates %d/%d",
			serial.Rounds, parallel.Rounds, serial.Candidates, parallel.Candidates)
	}
	for i, s := range serial.Beam {
		p := parallel.Beam[i]
		if s.Key != p.Key || s.BaseEnergy != p.BaseEnergy ||
			s.TTPMEnergy != p.TTPMEnergy || s.TDRPMEnergy != p.TDRPMEnergy ||
			s.Runs != p.Runs || s.NumDisks != p.NumDisks {
			return fmt.Errorf("beam[%d] diverged across jobs: %s vs %s", i, s.Key, p.Key)
		}
	}

	for i, s := range serial.Beam {
		want, err := evalAssignment(app, s.Assignment)
		if err != nil {
			return fmt.Errorf("full pipeline for beam[%d] %s: %w", i, s.Key, err)
		}
		if s.BaseEnergy != want.base || s.TTPMEnergy != want.ttpm ||
			s.TDRPMEnergy != want.tdrpm || s.Runs != want.runs {
			return fmt.Errorf("beam[%d] %s diverged from full pipeline: "+
				"base %v/%v ttpm %v/%v tdrpm %v/%v runs %d/%d",
				i, s.Key, s.BaseEnergy, want.base, s.TTPMEnergy, want.ttpm,
				s.TDRPMEnergy, want.tdrpm, s.Runs, want.runs)
		}
	}
	return nil
}

type pipelineScore struct {
	base, ttpm, tdrpm float64
	runs              int
}

// evalAssignment runs the complete pipeline from source text under a
// per-array layout assignment — sharing nothing with the engine but the
// program text.
func evalAssignment(app apps.App, specs layoutopt.Assignment) (pipelineScore, error) {
	var out pipelineScore
	prog, err := app.Compile()
	if err != nil {
		return out, err
	}
	if len(prog.Arrays) != len(specs) {
		return out, fmt.Errorf("assignment has %d specs for %d arrays", len(specs), len(prog.Arrays))
	}
	for _, arr := range prog.Arrays {
		arr.Stripe = specs[arr.Index]
	}
	lay, err := layout.New(prog, 0)
	if err != nil {
		return out, err
	}
	r, err := core.New(prog, lay)
	if err != nil {
		return out, err
	}
	sched, err := r.DiskReuseSchedule()
	if err != nil {
		return out, err
	}
	if err := r.Verify(sched); err != nil {
		return out, err
	}
	model := disk.Ultrastar36Z15()
	gen := trace.GenConfig{
		ComputePerIter:  app.ComputePerIter,
		ServiceEstimate: model.FullSpeedService(lay.PageSize),
	}
	origTrace, err := trace.Generate(r, trace.SinglePhase(r.OriginalSchedule()), gen)
	if err != nil {
		return out, err
	}
	restrTrace, err := trace.Generate(r, trace.SinglePhase(sched), gen)
	if err != nil {
		return out, err
	}
	runSim := func(reqs []trace.Request, pol sim.Policy) (float64, error) {
		res, err := sim.Run(reqs, lay.PageDisk, sim.Config{
			Model: model, NumDisks: lay.NumDisks(), Policy: pol,
		})
		if err != nil {
			return 0, err
		}
		return res.Energy, nil
	}
	out.runs = core.Stats(sched, lay.NumDisks()).Runs
	if out.base, err = runSim(origTrace, sim.NoPM); err != nil {
		return out, err
	}
	if out.ttpm, err = runSim(restrTrace, sim.TPM); err != nil {
		return out, err
	}
	if out.tdrpm, err = runSim(restrTrace, sim.DRPM); err != nil {
		return out, err
	}
	return out, nil
}
