// Package invariant is the correctness harness for the whole pipeline: it
// runs a DRL program (typically produced by internal/drlgen) through
// compile → restructure → trace generation → simulation and asserts the
// load-bearing properties end to end, in eight families:
//
//  1. Legality — the disk-reuse schedule is a permutation of the iteration
//     space and passes interp.Space.VerifySchedule.
//  2. Metamorphic equivalence — replaying the restructured order reaches
//     the same element-wise final store state as program order
//     (interp.Space.FinalStoreState).
//  3. Multiset preservation — restructuring reorders the per-disk access
//     stream but never adds, drops, or rewrites a request.
//  4. Simulator conservation — energy decomposes exactly into time-in-state
//     × state power plus transition energies, busy time fits the makespan,
//     no request is served before it arrives, and policy energy exceeds
//     the NoPM baseline only through the accounted channels
//     (CheckSimRun, CheckPolicyDominance).
//  5. Determinism — every stage is bit-identical at Jobs=1 and Jobs=N.
//  6. Engine parity — the stride-compiled execution engine and the
//     tree-walk oracle produce bit-identical iteration spaces, dependence
//     graphs, disk attributions, schedules, and request traces, at Jobs=1
//     and Jobs=N (CheckEngineParity).
//  7. Streaming parity — replaying the trace through the out-of-core path
//     (binary encode → chunked decode → sim.RunStream) produces the same
//     Result, interval stream, and telemetry as the in-memory replay, bit
//     for bit, at Jobs=1 and Jobs=N.
//  8. Layout-search fidelity — the re-attribution scoring engine's beam
//     search is bit-identical at Jobs=1 and Jobs=N, and every beam
//     survivor's score matches a from-scratch full-pipeline evaluation of
//     that per-array layout, bit for bit (CheckLayoutSearch).
//
// These are exactly the assumptions the paper's claims rest on (§5 legality
// of the Fig. 3 reordering, §7 fidelity of the energy accounting), turned
// into machine-checked properties every future change must preserve.
package invariant

import (
	"bytes"
	"context"
	"fmt"
	"reflect"

	"diskreuse/internal/core"
	"diskreuse/internal/disk"
	"diskreuse/internal/drlgen"
	"diskreuse/internal/interp"
	"diskreuse/internal/layout"
	"diskreuse/internal/obs"
	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
)

// Options configures one end-to-end check.
type Options struct {
	// Model is the disk model; a zero Name selects the Ultrastar 36Z15.
	Model disk.Model
	// ComputePerIter is the trace generator's per-iteration compute time in
	// seconds; zero selects 1 ms. Long values (tens of seconds) open
	// TPM/DRPM-relevant idle gaps.
	ComputePerIter float64
	// Jobs is the parallel worker budget compared against the serial run
	// for the determinism family; values < 1 select 8.
	Jobs int
	// TPMThreshold overrides the TPM spin-down threshold (0 = break-even).
	TPMThreshold float64
}

// Report summarizes a passing check, so callers (the CLI repro flags, the
// test suite's aggregates) can see what the case exercised.
type Report struct {
	Iterations int
	Edges      int
	Disks      int
	Requests   int
	// Energy is the restructured trace's total energy per policy.
	Energy map[sim.Policy]float64
	// BaseEnergyOriginal is NoPM energy over the program-order trace.
	BaseEnergyOriginal float64
	// Transition totals across the power-managed runs.
	SpinUps, SpinDowns, SpeedShifts int
}

// policies every case is simulated under.
var policies = []sim.Policy{sim.NoPM, sim.TPM, sim.DRPM}

// PipelineFuzzConfig is the generator configuration shared by the
// FuzzPipeline target and dpcc's -fuzz-case flag, so a corpus entry replays
// into exactly the program the fuzzer exercised.
var PipelineFuzzConfig = drlgen.Config{MaxIterations: 96}

// Check runs src through the full pipeline and asserts all seven invariant
// families, returning a Report on success and the first violation as an
// error. The source must be a valid DRL program (drlgen output always is).
func Check(src string, opt Options) (*Report, error) {
	if opt.Model.Name == "" {
		opt.Model = disk.Ultrastar36Z15()
	}
	if opt.ComputePerIter == 0 {
		opt.ComputePerIter = 1e-3
	}
	if opt.Jobs < 1 {
		opt.Jobs = 8
	}

	// Front end.
	astProg, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	prog, err := sema.Analyze(astProg, sema.Options{})
	if err != nil {
		return nil, fmt.Errorf("sema: %w", err)
	}
	lay, err := layout.New(prog, 0)
	if err != nil {
		return nil, fmt.Errorf("layout: %w", err)
	}

	// Family 5 (analysis): the serial and parallel front-ends must agree on
	// the dependence graph and the disk attribution exactly.
	ctx := context.Background()
	r1, err := core.NewCtx(ctx, prog, lay, core.Options{Jobs: 1})
	if err != nil {
		return nil, fmt.Errorf("restructure (serial): %w", err)
	}
	rN, err := core.NewCtx(ctx, prog, lay, core.Options{Jobs: opt.Jobs})
	if err != nil {
		return nil, fmt.Errorf("restructure (jobs=%d): %w", opt.Jobs, err)
	}
	if !reflect.DeepEqual(r1.Graph, rN.Graph) {
		return nil, fmt.Errorf("determinism: dependence graph differs between Jobs=1 and Jobs=%d", opt.Jobs)
	}
	n := r1.Space.NumIterations()
	for id := 0; id < n; id++ {
		if r1.PrimaryDisk(id) != rN.PrimaryDisk(id) {
			return nil, fmt.Errorf("determinism: primary disk of iteration %d differs between Jobs=1 and Jobs=%d", id, opt.Jobs)
		}
		if !reflect.DeepEqual(r1.TouchedDisks(id), rN.TouchedDisks(id)) {
			return nil, fmt.Errorf("determinism: touched disks of iteration %d differ between Jobs=1 and Jobs=%d", id, opt.Jobs)
		}
	}

	// Family 6: the compiled engine and the tree-walk oracle must agree
	// bit for bit on everything downstream of the front end.
	if err := checkEngineParity(prog, lay, opt.ComputePerIter, opt.Jobs); err != nil {
		return nil, err
	}

	orig := r1.OriginalSchedule()
	sched, err := r1.DiskReuseSchedule()
	if err != nil {
		return nil, fmt.Errorf("schedule: %w", err)
	}
	schedN, err := rN.DiskReuseSchedule()
	if err != nil {
		return nil, fmt.Errorf("schedule (jobs=%d): %w", opt.Jobs, err)
	}
	if !reflect.DeepEqual(sched.Order, schedN.Order) || !reflect.DeepEqual(sched.Disk, schedN.Disk) {
		return nil, fmt.Errorf("determinism: disk-reuse schedule differs between Jobs=1 and Jobs=%d", opt.Jobs)
	}

	// Family 1: legality. Verify checks permutation + dependences; the
	// explicit re-checks below keep this family independent of Verify's
	// implementation details.
	if err := r1.Verify(sched); err != nil {
		return nil, fmt.Errorf("legality: %w", err)
	}
	if len(sched.Order) != n || len(sched.Disk) != n {
		return nil, fmt.Errorf("legality: schedule covers %d of %d iterations", len(sched.Order), n)
	}
	seen := make([]bool, n)
	for k, id := range sched.Order {
		if id < 0 || id >= n || seen[id] {
			return nil, fmt.Errorf("legality: schedule is not a permutation at position %d (id %d)", k, id)
		}
		seen[id] = true
		if sched.Disk[k] != r1.PrimaryDisk(id) {
			return nil, fmt.Errorf("legality: position %d clustered under disk %d but iteration %d's primary disk is %d",
				k, sched.Disk[k], id, r1.PrimaryDisk(id))
		}
	}

	// Family 2: metamorphic store-state equivalence.
	if !reflect.DeepEqual(r1.Space.FinalStoreState(orig.Order), r1.Space.FinalStoreState(sched.Order)) {
		return nil, fmt.Errorf("metamorphic: restructured replay reaches a different final store state")
	}

	// Family 3: the restructured trace is a per-disk permutation of the
	// original trace's requests.
	gcfg := trace.GenConfig{ComputePerIter: opt.ComputePerIter}
	origReqs, err := trace.Generate(r1, trace.SinglePhase(orig), gcfg)
	if err != nil {
		return nil, fmt.Errorf("trace (original): %w", err)
	}
	schedReqs, err := trace.Generate(r1, trace.SinglePhase(sched), gcfg)
	if err != nil {
		return nil, fmt.Errorf("trace (restructured): %w", err)
	}
	if err := sameRequestMultiset(origReqs, schedReqs, lay); err != nil {
		return nil, fmt.Errorf("multiset: %w", err)
	}

	// Families 4 and 5 (simulation): run every policy on the restructured
	// trace at Jobs=1 and Jobs=N, require bit-identical results and interval
	// streams, and check the conservation laws on each run.
	diskOf := func(block int64) (int, error) { return lay.PageDisk(block) }
	numDisks := lay.NumDisks()
	pt, err := sim.PrepareTrace(schedReqs, diskOf, numDisks)
	if err != nil {
		return nil, fmt.Errorf("prepare: %w", err)
	}
	rep := &Report{
		Iterations: n,
		Edges:      r1.Graph.NumEdges(),
		Disks:      numDisks,
		Requests:   len(schedReqs),
		Energy:     make(map[sim.Policy]float64, len(policies)),
	}
	// Family 7's streaming legs replay the binary encoding of the same
	// arrival-sorted request stream the prepared trace replays.
	var encoded bytes.Buffer
	if err := trace.EncodeBinary(&encoded, pt.Sorted(), 0, numDisks); err != nil {
		return nil, fmt.Errorf("streaming parity: encode: %w", err)
	}
	var baseRes *sim.Result
	for _, pol := range policies {
		res1, ivs1, tel1, err := runRecorded(pt, opt, pol, numDisks, 1)
		if err != nil {
			return nil, fmt.Errorf("sim %s (serial): %w", pol, err)
		}
		resN, ivsN, telN, err := runRecorded(pt, opt, pol, numDisks, opt.Jobs)
		if err != nil {
			return nil, fmt.Errorf("sim %s (jobs=%d): %w", pol, opt.Jobs, err)
		}
		if !reflect.DeepEqual(res1, resN) {
			return nil, fmt.Errorf("determinism: %s result differs between Jobs=1 and Jobs=%d", pol, opt.Jobs)
		}
		if !reflect.DeepEqual(ivs1, ivsN) {
			return nil, fmt.Errorf("determinism: %s interval stream differs between Jobs=1 and Jobs=%d", pol, opt.Jobs)
		}
		if !reflect.DeepEqual(tel1, telN) {
			return nil, fmt.Errorf("determinism: %s telemetry differs between Jobs=1 and Jobs=%d", pol, opt.Jobs)
		}

		// Family 7: the out-of-core path must be bit-identical to the
		// in-memory replay at both worker counts.
		for _, jobs := range []int{1, opt.Jobs} {
			resS, ivsS, telS, err := runStreamed(encoded.Bytes(), opt, pol, numDisks, jobs, diskOf)
			if err != nil {
				return nil, fmt.Errorf("sim %s (streamed, jobs=%d): %w", pol, jobs, err)
			}
			if !reflect.DeepEqual(res1, resS) {
				return nil, fmt.Errorf("streaming parity: %s result differs from the in-memory replay (jobs=%d)", pol, jobs)
			}
			if !reflect.DeepEqual(ivs1, ivsS) {
				return nil, fmt.Errorf("streaming parity: %s interval stream differs from the in-memory replay (jobs=%d)", pol, jobs)
			}
			if !reflect.DeepEqual(tel1, telS) {
				return nil, fmt.Errorf("streaming parity: %s telemetry differs from the in-memory replay (jobs=%d)", pol, jobs)
			}
		}
		if err := CheckSimRun(SimRun{
			Model:        opt.Model,
			Policy:       pol,
			NumDisks:     numDisks,
			TPMThreshold: opt.TPMThreshold,
			Requests:     schedReqs,
			DiskOf:       diskOf,
			Result:       res1,
			Intervals:    ivs1,
		}); err != nil {
			return nil, fmt.Errorf("conservation (%s): %w", pol, err)
		}
		rep.Energy[pol] = res1.Energy
		if pol == sim.NoPM {
			baseRes = res1
		} else {
			if err := CheckPolicyDominance(baseRes, res1, opt.Model); err != nil {
				return nil, fmt.Errorf("conservation: %w", err)
			}
			for d := range res1.PerDisk {
				m := &res1.PerDisk[d].Meter
				rep.SpinUps += m.SpinUps
				rep.SpinDowns += m.SpinDowns
				rep.SpeedShifts += m.SpeedShifts
			}
		}
	}

	// The original-order trace must satisfy the same conservation laws (the
	// baseline leg of every paper figure).
	ptOrig, err := sim.PrepareTrace(origReqs, diskOf, numDisks)
	if err != nil {
		return nil, fmt.Errorf("prepare (original): %w", err)
	}
	origRes, origIvs, _, err := runRecorded(ptOrig, opt, sim.NoPM, numDisks, 1)
	if err != nil {
		return nil, fmt.Errorf("sim NoPM (original): %w", err)
	}
	if err := CheckSimRun(SimRun{
		Model:     opt.Model,
		Policy:    sim.NoPM,
		NumDisks:  numDisks,
		Requests:  origReqs,
		DiskOf:    diskOf,
		Result:    origRes,
		Intervals: origIvs,
	}); err != nil {
		return nil, fmt.Errorf("conservation (NoPM, original order): %w", err)
	}
	rep.BaseEnergyOriginal = origRes.Energy
	return rep, nil
}

// CheckEngineParity parses src and asserts the engine-parity family alone:
// the stride-compiled engine and the tree-walk oracle produce bit-identical
// iteration spaces, dependence graphs, disk attributions, disk-reuse
// schedules, and generated request traces, at Jobs=1 and Jobs=jobs (values
// < 1 select 8). It is the cheap core of family 6, exposed separately so
// the FuzzEngineParity target can hammer it without paying for the
// simulator legs of Check.
func CheckEngineParity(src string, jobs int) error {
	if jobs < 1 {
		jobs = 8
	}
	astProg, err := parser.Parse(src)
	if err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	prog, err := sema.Analyze(astProg, sema.Options{})
	if err != nil {
		return fmt.Errorf("sema: %w", err)
	}
	lay, err := layout.New(prog, 0)
	if err != nil {
		return fmt.Errorf("layout: %w", err)
	}
	return checkEngineParity(prog, lay, 1e-3, jobs)
}

// sameSpace reports whether two spaces enumerate the identical iteration
// sequence: same nest boundaries and, for every global id, the same nest
// and iteration vector.
func sameSpace(a, b *interp.Space) bool {
	if a.NumIterations() != b.NumIterations() ||
		!reflect.DeepEqual(a.NestFirst, b.NestFirst) {
		return false
	}
	for id := 0; id < a.NumIterations(); id++ {
		if a.Nest(id) != b.Nest(id) ||
			!reflect.DeepEqual(a.IterVec(id), b.IterVec(id)) {
			return false
		}
	}
	return true
}

// checkEngineParity runs the analysis front end under both engines at
// Jobs=1 and Jobs=jobs and requires bit-identical outputs at every stage:
// Space (iteration arenas and NestFirst), DepGraph, per-iteration disk
// attribution, the Fig. 3 schedule, and the program-order and restructured
// request traces under both coalescing models.
func checkEngineParity(prog *sema.Program, lay *layout.Layout, computePerIter float64, jobs int) error {
	ctx := context.Background()
	for _, j := range []int{1, jobs} {
		rC, err := core.NewCtx(ctx, prog, lay, core.Options{Jobs: j, Engine: interp.EngineCompiled})
		if err != nil {
			return fmt.Errorf("engine parity: compiled engine (jobs=%d): %w", j, err)
		}
		rI, err := core.NewCtx(ctx, prog, lay, core.Options{Jobs: j, Engine: interp.EngineInterp})
		if err != nil {
			return fmt.Errorf("engine parity: interp engine (jobs=%d): %w", j, err)
		}
		if !sameSpace(rC.Space, rI.Space) {
			return fmt.Errorf("engine parity: iteration space differs between engines (jobs=%d)", j)
		}
		if !reflect.DeepEqual(rC.Graph, rI.Graph) {
			return fmt.Errorf("engine parity: dependence graph differs between engines (jobs=%d)", j)
		}
		for id := 0; id < rC.Space.NumIterations(); id++ {
			if rC.PrimaryDisk(id) != rI.PrimaryDisk(id) ||
				!reflect.DeepEqual(rC.TouchedDisks(id), rI.TouchedDisks(id)) {
				return fmt.Errorf("engine parity: disk attribution of iteration %d differs between engines (jobs=%d)", id, j)
			}
		}
		schedC, err := rC.DiskReuseSchedule()
		if err != nil {
			return fmt.Errorf("engine parity: schedule (compiled, jobs=%d): %w", j, err)
		}
		schedI, err := rI.DiskReuseSchedule()
		if err != nil {
			return fmt.Errorf("engine parity: schedule (interp, jobs=%d): %w", j, err)
		}
		if !reflect.DeepEqual(schedC.Order, schedI.Order) || !reflect.DeepEqual(schedC.Disk, schedI.Disk) {
			return fmt.Errorf("engine parity: disk-reuse schedule differs between engines (jobs=%d)", j)
		}
		for _, gcfg := range []trace.GenConfig{
			{ComputePerIter: computePerIter},
			{ComputePerIter: computePerIter, Coalesce: trace.LRU, CachePages: 8},
		} {
			for name, sched := range map[string]*core.Schedule{
				"original":     rC.OriginalSchedule(),
				"restructured": schedC,
			} {
				reqC, err := trace.Generate(rC, trace.SinglePhase(sched), gcfg)
				if err != nil {
					return fmt.Errorf("engine parity: trace (compiled, %s, jobs=%d): %w", name, j, err)
				}
				reqI, err := trace.Generate(rI, trace.SinglePhase(sched), gcfg)
				if err != nil {
					return fmt.Errorf("engine parity: trace (interp, %s, jobs=%d): %w", name, j, err)
				}
				if !reflect.DeepEqual(reqC, reqI) {
					return fmt.Errorf("engine parity: %s-order trace differs between engines (coalesce=%v, jobs=%d)", name, gcfg.Coalesce, j)
				}
			}
		}
	}
	return nil
}

// runRecorded replays a prepared trace under one policy with interval
// recording and telemetry enabled.
func runRecorded(pt *sim.PreparedTrace, opt Options, pol sim.Policy, numDisks, jobs int) (*sim.Result, []sim.Interval, *obs.SimTelemetry, error) {
	var ivs []sim.Interval
	tel := obs.NewSimTelemetry(numDisks)
	cfg := sim.Config{
		Model:        opt.Model,
		NumDisks:     numDisks,
		Policy:       pol,
		TPMThreshold: opt.TPMThreshold,
		Jobs:         jobs,
		Record:       func(iv sim.Interval) { ivs = append(ivs, iv) },
		Telemetry:    tel,
	}
	res, err := sim.RunPrepared(pt, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, ivs, tel, nil
}

// runStreamed replays the binary-encoded trace through the out-of-core
// path (chunked decode → sim.RunStream) under one policy, with the same
// recording and telemetry as runRecorded.
func runStreamed(encoded []byte, opt Options, pol sim.Policy, numDisks, jobs int, diskOf func(block int64) (int, error)) (*sim.Result, []sim.Interval, *obs.SimTelemetry, error) {
	rd, err := trace.NewReader(bytes.NewReader(encoded))
	if err != nil {
		return nil, nil, nil, err
	}
	defer rd.Close()
	var ivs []sim.Interval
	tel := obs.NewSimTelemetry(numDisks)
	cfg := sim.Config{
		Model:        opt.Model,
		NumDisks:     numDisks,
		Policy:       pol,
		TPMThreshold: opt.TPMThreshold,
		Jobs:         jobs,
		Record:       func(iv sim.Interval) { ivs = append(ivs, iv) },
		Telemetry:    tel,
	}
	res, err := sim.RunStream(rd, diskOf, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, ivs, tel, nil
}

// reqKey identifies a request up to reordering: restructuring may change
// when and from which processor clock a page is touched, but never which
// disk, page, size, or direction.
type reqKey struct {
	disk  int
	block int64
	size  int64
	write bool
}

// sameRequestMultiset checks that two traces touch exactly the same
// per-disk request multiset.
func sameRequestMultiset(a, b []trace.Request, lay *layout.Layout) error {
	if len(a) != len(b) {
		return fmt.Errorf("request counts differ: %d vs %d", len(a), len(b))
	}
	counts := make(map[reqKey]int, len(a))
	key := func(r trace.Request) (reqKey, error) {
		d, err := lay.PageDisk(r.Block)
		if err != nil {
			return reqKey{}, err
		}
		return reqKey{disk: d, block: r.Block, size: r.Size, write: r.Write}, nil
	}
	for _, r := range a {
		k, err := key(r)
		if err != nil {
			return err
		}
		counts[k]++
	}
	for _, r := range b {
		k, err := key(r)
		if err != nil {
			return err
		}
		counts[k]--
		if counts[k] < 0 {
			return fmt.Errorf("restructured trace has an extra request for disk %d block %d (size %d, write %v)",
				k.disk, k.block, k.size, k.write)
		}
	}
	for k, c := range counts {
		if c != 0 {
			return fmt.Errorf("restructured trace dropped %d request(s) for disk %d block %d", c, k.disk, k.block)
		}
	}
	return nil
}
