package invariant

import (
	"testing"

	"diskreuse/internal/drlgen"
)

// FuzzEngineParity drives fuzzer-chosen programs through the analysis
// front end under both execution engines and requires bit-identical
// outputs at every stage (CheckEngineParity). It is the adversarial leg of
// invariant family 6: FuzzPipeline exercises parity too (Check runs the
// family), but this target skips the simulator so the fuzzer spends its
// budget on the engine boundary — odometer carries, triangular bounds,
// stride deltas, page-table arithmetic. Violations replay with
// `dpcc -fuzz-case <corpus file>`, which runs the full Check including
// this family.
func FuzzEngineParity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("triangular bounds and carry chains"))
	f.Add([]byte{0x00, 0xff, 0x42, 0x13, 0x37, 0x9c, 0x6b, 0xd4, 0x21, 0x08})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := drlgen.FromBytes(data, PipelineFuzzConfig)
		if err := CheckEngineParity(c.Source, 4); err != nil {
			t.Fatalf("engine parity violated: %v\nsource:\n%s", err, c.Source)
		}
	})
}
