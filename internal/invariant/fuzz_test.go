package invariant

import (
	"testing"

	"diskreuse/internal/drlgen"
)

// FuzzPipeline drives the whole pipeline from fuzzer-chosen bytes: the
// bytes steer drlgen's structural choices (every byte string maps to a
// valid program), and the resulting case must satisfy all five invariant
// families. Any crash or violation the fuzzer finds is replayable with
// `dpcc -fuzz-case <corpus file>`.
func FuzzPipeline(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("steer the generator through its branches"))
	f.Add([]byte{0xff, 0x00, 0x80, 0x41, 0x07, 0xc3, 0x19, 0xee, 0x5a, 0x33})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := drlgen.FromBytes(data, PipelineFuzzConfig)
		if _, err := Check(c.Source, Options{Jobs: 2, ComputePerIter: 0.05}); err != nil {
			t.Fatalf("pipeline invariant violated: %v\nsource:\n%s", err, c.Source)
		}
	})
}
