package invariant

import (
	"context"
	"strings"
	"sync"
	"testing"

	"diskreuse/internal/apps"
	"diskreuse/internal/ast"
	"diskreuse/internal/core"
	"diskreuse/internal/disk"
	"diskreuse/internal/drlgen"
	"diskreuse/internal/exp"
	"diskreuse/internal/layout"
	"diskreuse/internal/parser"
	"diskreuse/internal/sema"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
)

// TestInvariantSuite is the randomized end-to-end harness: 200 seeded
// generator cases, each run through the full pipeline with all five
// invariant families asserted. The batches steer the generator toward the
// regimes where the pipeline's corners live: dependence-heavy programs,
// idle gaps long enough to trigger TPM/DRPM transitions, and iteration
// spaces big enough to cross the parallel-path thresholds.
func TestInvariantSuite(t *testing.T) {
	type batch struct {
		name  string
		seeds int
		base  int64 // first seed, so batches never share cases
		cfg   drlgen.Config
		opt   func(seed int64) Options
		// aggregate, when true, additionally asserts that summed TPM and
		// DRPM energy beat the summed NoPM baseline over the whole batch
		// (the paper's Table 3 claim, valid in the long-gap regime).
		aggregate bool
	}
	batches := []batch{
		{
			name:  "small",
			seeds: 110,
			base:  1000,
			cfg:   drlgen.Config{},
			opt:   func(int64) Options { return Options{} },
		},
		{
			name:  "deps",
			seeds: 50,
			base:  2000,
			cfg:   drlgen.Config{DepPairPct: 90, TriangularPct: 50},
			opt:   func(int64) Options { return Options{} },
		},
		{
			// Few pages, tens of seconds of compute between touches: every
			// inter-request gap dwarfs the 15.2 s break-even, so TPM spins
			// down and DRPM shifts on essentially every idle period.
			name:  "longgap",
			seeds: 32,
			base:  3000,
			cfg: drlgen.Config{
				MaxArrays: 2, MaxNests: 2, MaxDepth: 1,
				MaxExtent: 4, MaxStmts: 2, MaxIterations: 32,
			},
			opt: func(seed int64) Options {
				return Options{ComputePerIter: 15 + float64(seed%6)*15}
			},
			aggregate: true,
		},
		{
			// Single deep rectangular nest above interp's serial/parallel
			// crossover (4096 iterations), so the determinism family
			// actually exercises the sharded dependence build and the
			// sharded simulator loop.
			name:  "big",
			seeds: 8,
			base:  4000,
			cfg: drlgen.Config{
				MaxNests: 1, MinDepth: 2, MaxDepth: 2,
				MinExtent: 64, MaxExtent: 80,
				MaxIterations: 6400, TriangularPct: -1, StepPct: -1,
			},
			opt: func(int64) Options { return Options{} },
		},
	}

	total := 0
	for _, b := range batches {
		total += b.seeds
	}
	if total < 200 {
		t.Fatalf("suite covers %d cases, want >= 200", total)
	}

	for _, b := range batches {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			var mu sync.Mutex
			var baseSum, tpmSum, drpmSum float64
			transitions := 0
			var wg sync.WaitGroup
			sem := make(chan struct{}, 4)
			for i := 0; i < b.seeds; i++ {
				seed := b.base + int64(i)
				wg.Add(1)
				sem <- struct{}{}
				go func() {
					defer func() { <-sem; wg.Done() }()
					c := drlgen.Generate(seed, b.cfg)
					rep, err := Check(c.Source, b.opt(seed))
					if err != nil {
						t.Errorf("seed %d: %v\nsource:\n%s", seed, err, c.Source)
						return
					}
					mu.Lock()
					baseSum += rep.Energy[sim.NoPM]
					tpmSum += rep.Energy[sim.TPM]
					drpmSum += rep.Energy[sim.DRPM]
					transitions += rep.SpinUps + rep.SpinDowns + rep.SpeedShifts
					mu.Unlock()
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if b.aggregate {
				if transitions == 0 {
					t.Fatalf("long-gap batch triggered no power transitions; the batch is not exercising TPM/DRPM")
				}
				if tpmSum > baseSum {
					t.Errorf("aggregate TPM energy %.1f J exceeds NoPM baseline %.1f J", tpmSum, baseSum)
				}
				if drpmSum > baseSum {
					t.Errorf("aggregate DRPM energy %.1f J exceeds NoPM baseline %.1f J", drpmSum, baseSum)
				}
			}
			t.Logf("%d cases: Base %.1f J, TPM %.1f J, DRPM %.1f J, %d transitions",
				b.seeds, baseSum, tpmSum, drpmSum, transitions)
		})
	}
}

// gapSrc is a tiny fixed program whose trace has long per-disk idle gaps,
// used by the tamper tests to get a TPM run with real transitions.
const gapSrc = `array A[8] elem 4096 stripe(unit=4K, factor=4, start=0)

nest walk {
	for i = 0 to 7 {
		A[i] = 1;
	}
}
`

// tamperRun builds one real simulated run to mutate.
func tamperRun(t *testing.T, pol sim.Policy) (SimRun, *sim.Result) {
	t.Helper()
	astProg, err := parser.Parse(gapSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sema.Analyze(astProg, sema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := layout.New(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(prog, lay)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := r.DiskReuseSchedule()
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := trace.Generate(r, trace.SinglePhase(sched), trace.GenConfig{ComputePerIter: 60})
	if err != nil {
		t.Fatal(err)
	}
	diskOf := func(block int64) (int, error) { return lay.PageDisk(block) }
	pt, err := sim.PrepareTrace(reqs, diskOf, lay.NumDisks())
	if err != nil {
		t.Fatal(err)
	}
	res, ivs, _, err := runRecorded(pt, Options{Model: disk.Ultrastar36Z15(), Jobs: 1}, pol, lay.NumDisks(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return SimRun{
		Model:     disk.Ultrastar36Z15(),
		Policy:    pol,
		NumDisks:  lay.NumDisks(),
		Requests:  reqs,
		DiskOf:    diskOf,
		Result:    res,
		Intervals: ivs,
	}, res
}

// cloneRun deep-copies the mutable parts of a SimRun so each tamper starts
// from the same honest run.
func cloneRun(r SimRun) SimRun {
	res := *r.Result
	res.PerDisk = append([]sim.DiskStats(nil), r.Result.PerDisk...)
	r.Result = &res
	r.Intervals = append([]sim.Interval(nil), r.Intervals...)
	return r
}

// TestCheckSimRunDetectsTampering is the negative control for the
// conservation checker: a run that passes honestly must fail when any piece
// of its accounting is falsified.
func TestCheckSimRunDetectsTampering(t *testing.T) {
	honest, _ := tamperRun(t, sim.TPM)
	if err := CheckSimRun(honest); err != nil {
		t.Fatalf("honest TPM run rejected: %v", err)
	}
	if honest.Result.PerDisk[0].Meter.SpinUps == 0 {
		t.Fatalf("tamper fixture has no spin-ups; gaps too short")
	}

	cases := []struct {
		name   string
		tamper func(*SimRun)
		want   string
	}{
		{"energy total", func(r *SimRun) { r.Result.Energy += 100 }, "Energy"},
		{"free idle energy", func(r *SimRun) {
			// Keep the Energy total consistent so the per-disk meter check,
			// not the totals cross-check, is what catches the fake saving.
			m := &r.Result.PerDisk[0].Meter
			delta := m.IdleEnergy * 0.9
			m.IdleEnergy -= delta
			r.Result.Energy -= delta
		}, "idle energy"},
		{"shrunk makespan", func(r *SimRun) { r.Result.Makespan /= 2 }, "makespan"},
		{"phantom spin-up", func(r *SimRun) {
			r.Result.PerDisk[0].Meter.SpinUps++
			r.Result.PerDisk[0].Meter.SpinDowns++
		}, "transition"},
		{"dropped interval", func(r *SimRun) {
			for i, iv := range r.Intervals {
				if iv.Kind == sim.StateBusy {
					r.Intervals = append(r.Intervals[:i], r.Intervals[i+1:]...)
					return
				}
			}
			panic("no busy interval")
		}, "busy intervals"},
		{"time travel", func(r *SimRun) {
			for i := range r.Intervals {
				if r.Intervals[i].From > 1 {
					r.Intervals[i].From = 0
					return
				}
			}
			panic("no late interval")
		}, "overlap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := cloneRun(honest)
			tc.tamper(&r)
			err := CheckSimRun(r)
			if err == nil {
				t.Fatalf("tampered run accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCheckPolicyDominance exercises the bounded-dominance law directly:
// the honest pair passes, and a policy result claiming impossible extra
// energy fails.
func TestCheckPolicyDominance(t *testing.T) {
	m := disk.Ultrastar36Z15()
	_, baseRes := tamperRun(t, sim.NoPM)
	_, tpmRes := tamperRun(t, sim.TPM)
	if err := CheckPolicyDominance(baseRes, tpmRes, m); err != nil {
		t.Fatalf("honest pair rejected: %v", err)
	}
	bad := *tpmRes
	bad.Energy = baseRes.Energy * 10
	if err := CheckPolicyDominance(baseRes, &bad, m); err == nil {
		t.Fatalf("inflated policy energy accepted")
	} else if !strings.Contains(err.Error(), "exceeds Base") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestJobsConvention pins the unified Jobs contract across the three
// configurable layers: 0 selects GOMAXPROCS, 1 forces the serial path, and
// negative values are rejected with an explanatory error.
func TestJobsConvention(t *testing.T) {
	prog, err := sema.Analyze(mustParse(t, gapSrc), sema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	t.Run("core", func(t *testing.T) {
		for _, jobs := range []int{0, 1, 4} {
			if _, err := core.NewCtx(ctx, prog, nil, core.Options{Jobs: jobs}); err != nil {
				t.Errorf("Jobs=%d rejected: %v", jobs, err)
			}
		}
		_, err := core.NewCtx(ctx, prog, nil, core.Options{Jobs: -1})
		wantJobsErr(t, err, "core")
	})

	t.Run("sim", func(t *testing.T) {
		lay, err := layout.New(prog, 0)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.New(prog, lay)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := trace.Generate(r, trace.SinglePhase(r.OriginalSchedule()), trace.GenConfig{ComputePerIter: 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		pt, err := sim.PrepareTrace(reqs, func(b int64) (int, error) { return lay.PageDisk(b) }, lay.NumDisks())
		if err != nil {
			t.Fatal(err)
		}
		m := disk.Ultrastar36Z15()
		for _, jobs := range []int{0, 1, 4} {
			if _, err := sim.RunPrepared(pt, sim.Config{Model: m, NumDisks: lay.NumDisks(), Jobs: jobs}); err != nil {
				t.Errorf("Jobs=%d rejected: %v", jobs, err)
			}
		}
		_, err = sim.RunPrepared(pt, sim.Config{Model: m, NumDisks: lay.NumDisks(), Jobs: -1})
		wantJobsErr(t, err, "sim")
	})

	t.Run("exp", func(t *testing.T) {
		app := apps.App{Name: "tiny", Source: gapSrc, ComputePerIter: 1e-3}
		_, err := exp.RunAppContext(ctx, app, exp.Options{Jobs: -1})
		wantJobsErr(t, err, "exp")
		if _, err := exp.RunAppContext(ctx, app, exp.Options{Jobs: 2}); err != nil {
			t.Errorf("Jobs=2 rejected: %v", err)
		}
	})
}

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// wantJobsErr asserts the unified negative-Jobs error shape.
func wantJobsErr(t *testing.T, err error, pkg string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: negative Jobs accepted", pkg)
	}
	if !strings.Contains(err.Error(), "must be >= 0") || !strings.Contains(err.Error(), pkg+":") {
		t.Fatalf("%s: error %q lacks the unified convention message", pkg, err)
	}
}
