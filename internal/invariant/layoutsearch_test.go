package invariant

import (
	"fmt"
	"testing"

	"diskreuse/internal/drlgen"
)

// TestCheckLayoutSearchGenerated runs family 8 over 50 generated programs:
// the beam search is bit-identical at Jobs=1 and Jobs=8, and every beam
// survivor's score matches the independent full pipeline exactly.
func TestCheckLayoutSearchGenerated(t *testing.T) {
	const seeds = 50
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			c := drlgen.Generate(seed, drlgen.Config{})
			if err := CheckLayoutSearch(c.Source, 8); err != nil {
				t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, c.Source)
			}
		})
	}
}
