package invariant

import (
	"fmt"
	"sort"

	"diskreuse/internal/disk"
	"diskreuse/internal/power"
	"diskreuse/internal/sim"
	"diskreuse/internal/trace"
)

// eps is the relative slack for floating-point identities; comparisons
// scale it by (1 + |a| + |b|).
const eps = 1e-9

func leq(a, b float64) bool { return a <= b+eps*(1+abs(a)+abs(b)) }
func feq(a, b float64) bool { return leq(a, b) && leq(b, a) }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// SimRun bundles one open-loop simulation with its inputs so the
// conservation laws can be checked from the outside: the request stream,
// the block-to-disk mapping, the result, and (optionally) the recorded
// interval stream. The checks assume the paper's default RAIDWidth (one
// physical disk per I/O node) and the open-loop replay model.
type SimRun struct {
	Model    disk.Model
	Policy   sim.Policy
	NumDisks int
	// TPMThreshold is the resolved spin-down threshold; zero selects the
	// model's break-even time, mirroring sim.Config.
	TPMThreshold float64
	Requests     []trace.Request
	DiskOf       func(block int64) (int, error)
	Result       *sim.Result
	// Intervals is the Config.Record stream of the run; nil skips the
	// interval-level checks (ordering, arrival FIFO, energy reconstruction).
	Intervals []sim.Interval
}

// CheckSimRun asserts the simulator conservation laws on one run:
//
//   - totals are the per-disk sums (energy, I/O time, response time,
//     request counts), and the per-request count matches the input trace;
//   - every disk's meter passes power.VerifyMeter, its busy time fits the
//     makespan, and its time accounting covers the whole run;
//   - no request is served before it arrives (per-disk FIFO against the
//     sorted arrivals);
//   - the interval stream reconstructs the meter exactly: per-state times
//     and energies re-derived from the recorded intervals and the energy
//     model match the meter's accumulators, and the classified transitions
//     match the spin-up/down and shift counts;
//   - policy-specific structure: NoPM never leaves full-speed idle (and its
//     energy is exactly the closed form PA·busy + PI·(makespan−busy)); TPM
//     never shifts speed and spin-ups/downs pair; DRPM never spins down.
func CheckSimRun(r SimRun) error {
	res := r.Result
	if res == nil {
		return fmt.Errorf("invariant: SimRun has no result")
	}
	if len(res.PerDisk) != r.NumDisks {
		return fmt.Errorf("invariant: result has %d disks, config %d", len(res.PerDisk), r.NumDisks)
	}
	thr := r.TPMThreshold
	if thr == 0 {
		thr = r.Model.BreakEven
	}

	// Totals are per-disk sums.
	var energy, ioTime, resp float64
	reqs := 0
	for d := range res.PerDisk {
		st := &res.PerDisk[d]
		energy += st.Meter.Total()
		ioTime += st.BusyTime
		resp += st.ResponseTime
		reqs += st.Requests
	}
	if !feq(energy, res.Energy) {
		return fmt.Errorf("invariant: Energy %g != per-disk sum %g", res.Energy, energy)
	}
	if !feq(ioTime, res.IOTime) {
		return fmt.Errorf("invariant: IOTime %g != per-disk sum %g", res.IOTime, ioTime)
	}
	if !feq(resp, res.ResponseTime) {
		return fmt.Errorf("invariant: ResponseTime %g != per-disk sum %g", res.ResponseTime, resp)
	}
	if reqs != res.Requests || reqs != len(r.Requests) {
		return fmt.Errorf("invariant: request counts disagree: per-disk %d, result %d, trace %d",
			reqs, res.Requests, len(r.Requests))
	}

	// Per-disk arrival streams, for the FIFO check and the makespan floor.
	arrivals := make([][]float64, r.NumDisks)
	maxArrival := 0.0
	for _, q := range r.Requests {
		d, err := r.DiskOf(q.Block)
		if err != nil {
			return fmt.Errorf("invariant: %v", err)
		}
		if d < 0 || d >= r.NumDisks {
			return fmt.Errorf("invariant: request block %d mapped to disk %d outside 0..%d", q.Block, d, r.NumDisks-1)
		}
		arrivals[d] = append(arrivals[d], q.Arrival)
		if q.Arrival > maxArrival {
			maxArrival = q.Arrival
		}
	}
	if len(r.Requests) > 0 && !leq(maxArrival, res.Makespan) {
		return fmt.Errorf("invariant: makespan %g before last arrival %g", res.Makespan, maxArrival)
	}

	for d := range res.PerDisk {
		st := &res.PerDisk[d]
		if st.Requests != len(arrivals[d]) {
			return fmt.Errorf("invariant: disk %d served %d requests, trace sends %d", d, st.Requests, len(arrivals[d]))
		}
		if err := power.VerifyMeter(&st.Meter); err != nil {
			return fmt.Errorf("invariant: disk %d: %w", d, err)
		}
		if !leq(st.BusyTime, res.Makespan) {
			return fmt.Errorf("invariant: disk %d busy %g s exceeds makespan %g s", d, st.BusyTime, res.Makespan)
		}
		if !leq(st.BusyTime, st.ResponseTime) {
			return fmt.Errorf("invariant: disk %d response %g s below busy %g s", d, st.ResponseTime, st.BusyTime)
		}
		// The disk is accounted from time 0 to at least the makespan; a
		// post-service DRPM recovery shift (or a tail spin-down) may run past
		// it by at most the transition time already metered.
		tt := st.Meter.TotalTime()
		if !leq(res.Makespan, tt) || !leq(tt, res.Makespan+st.Meter.TransitionTime) {
			return fmt.Errorf("invariant: disk %d accounts %g s of a %g s run", d, tt, res.Makespan)
		}
		if !feq(st.Meter.ActiveTime, st.BusyTime) {
			return fmt.Errorf("invariant: disk %d meter active %g s != busy %g s", d, st.Meter.ActiveTime, st.BusyTime)
		}

		switch r.Policy {
		case sim.NoPM:
			m := &st.Meter
			if m.SpinUps != 0 || m.SpinDowns != 0 || m.SpeedShifts != 0 || m.StandbyTime != 0 || m.TransitionTime != 0 {
				return fmt.Errorf("invariant: NoPM disk %d has transitions (ups=%d downs=%d shifts=%d standby=%g trans=%g)",
					d, m.SpinUps, m.SpinDowns, m.SpeedShifts, m.StandbyTime, m.TransitionTime)
			}
			// Closed form: the disk is active at full speed for its busy time
			// and idles at full speed the rest of the makespan.
			pa := power.ActivePowerAt(r.Model, r.Model.RPMMax)
			pi := r.Model.PowerIdle
			want := pa*st.BusyTime + pi*(res.Makespan-st.BusyTime)
			if !feq(m.Total(), want) {
				return fmt.Errorf("invariant: NoPM disk %d energy %g J != closed form %g J", d, m.Total(), want)
			}
		case sim.TPM:
			m := &st.Meter
			if m.SpeedShifts != 0 {
				return fmt.Errorf("invariant: TPM disk %d shifted speed %d times", d, m.SpeedShifts)
			}
			// Every spin-up follows a spin-down; at most the final (tail)
			// spin-down is never woken from.
			if m.SpinUps > m.SpinDowns || m.SpinDowns > m.SpinUps+1 {
				return fmt.Errorf("invariant: TPM disk %d spin-ups %d / spin-downs %d unpaired", d, m.SpinUps, m.SpinDowns)
			}
			// With the default threshold, spin-downs only happen in gaps the
			// simulator itself counted as over break-even (plus the tail).
			if thr == r.Model.BreakEven {
				if m.SpinUps > st.GapsOverBreakEven || m.SpinDowns > st.GapsOverBreakEven+1 {
					return fmt.Errorf("invariant: TPM disk %d %d/%d spin-ups/downs but only %d gaps over break-even",
						d, m.SpinUps, m.SpinDowns, st.GapsOverBreakEven)
				}
			}
		case sim.DRPM:
			m := &st.Meter
			if m.SpinUps != 0 || m.SpinDowns != 0 || m.StandbyTime != 0 {
				return fmt.Errorf("invariant: DRPM disk %d spun down (ups=%d downs=%d standby=%g)",
					d, m.SpinUps, m.SpinDowns, m.StandbyTime)
			}
		}
	}

	if r.Intervals != nil {
		if err := checkIntervals(r, arrivals); err != nil {
			return err
		}
	}
	return nil
}

// ivAccum re-derives one disk's meter from its recorded interval stream.
type ivAccum struct {
	times              [4]float64 // indexed by sim.StateKind
	energies           [4]float64
	ups, downs, shifts int
	rpm                int // current speed, for classifying transitions
	lastTo             float64
	count              int // busy intervals seen (one per request)
}

// checkIntervals validates the recorded interval stream against the
// per-disk meters and arrivals: intervals are ordered and non-overlapping
// per disk, each busy interval begins no earlier than its request's
// arrival, and folding the intervals through the energy model reproduces
// every meter accumulator and transition count.
func checkIntervals(r SimRun, arrivals [][]float64) error {
	m := r.Model
	accs := make([]ivAccum, r.NumDisks)
	for d := range accs {
		accs[d].rpm = m.RPMMax
	}
	sortedArrivals := make([][]float64, len(arrivals))
	for d := range arrivals {
		s := append([]float64(nil), arrivals[d]...)
		sort.Float64s(s)
		sortedArrivals[d] = s
	}

	for i, iv := range r.Intervals {
		if iv.Disk < 0 || iv.Disk >= r.NumDisks {
			return fmt.Errorf("invariant: interval %d on disk %d outside 0..%d", i, iv.Disk, r.NumDisks-1)
		}
		a := &accs[iv.Disk]
		if iv.To < iv.From {
			return fmt.Errorf("invariant: disk %d interval [%g, %g] runs backwards", iv.Disk, iv.From, iv.To)
		}
		if !leq(a.lastTo, iv.From) {
			return fmt.Errorf("invariant: disk %d intervals overlap: [%g, %g] starts before %g",
				iv.Disk, iv.From, iv.To, a.lastTo)
		}
		a.lastTo = iv.To
		dt := iv.To - iv.From
		a.times[iv.Kind] += dt
		switch iv.Kind {
		case sim.StateBusy:
			if a.count >= len(sortedArrivals[iv.Disk]) {
				return fmt.Errorf("invariant: disk %d has more busy intervals than requests", iv.Disk)
			}
			if arr := sortedArrivals[iv.Disk][a.count]; !leq(arr, iv.From) {
				return fmt.Errorf("invariant: disk %d request %d served at %g before its arrival %g",
					iv.Disk, a.count, iv.From, arr)
			}
			a.count++
			a.energies[iv.Kind] += power.ActivePowerAt(m, iv.RPM) * dt
		case sim.StateIdle:
			a.energies[iv.Kind] += power.IdlePowerAt(m, iv.RPM) * dt
		case sim.StateStandby:
			a.energies[iv.Kind] += m.PowerStandby * dt
			a.rpm = 0
		case sim.StateTransition:
			// Classify by the speed trajectory: RPM 0 is a spin-down; any
			// speed reached from standby is a spin-up (always to full);
			// otherwise a DRPM level shift between spinning speeds.
			switch {
			case iv.RPM == 0:
				a.downs++
				a.energies[iv.Kind] += m.SpinDownEnergy
			case a.rpm == 0:
				if iv.RPM != m.RPMMax {
					return fmt.Errorf("invariant: disk %d spin-up to %d rpm, want %d", iv.Disk, iv.RPM, m.RPMMax)
				}
				a.ups++
				a.energies[iv.Kind] += m.SpinUpEnergy
			default:
				a.shifts++
				a.energies[iv.Kind] += power.ShiftEnergy(m, a.rpm, iv.RPM)
			}
		}
		if iv.Kind != sim.StateStandby {
			a.rpm = iv.RPM
		}
	}

	for d := range accs {
		a := &accs[d]
		mt := &r.Result.PerDisk[d].Meter
		if a.count != len(sortedArrivals[d]) {
			return fmt.Errorf("invariant: disk %d recorded %d busy intervals for %d requests", d, a.count, len(sortedArrivals[d]))
		}
		if a.ups != mt.SpinUps || a.downs != mt.SpinDowns || a.shifts != mt.SpeedShifts {
			return fmt.Errorf("invariant: disk %d interval transitions (%d/%d/%d) != meter (%d/%d/%d)",
				d, a.ups, a.downs, a.shifts, mt.SpinUps, mt.SpinDowns, mt.SpeedShifts)
		}
		for kind, mtTime := range map[sim.StateKind]float64{
			sim.StateBusy:       mt.ActiveTime,
			sim.StateIdle:       mt.IdleTime,
			sim.StateStandby:    mt.StandbyTime,
			sim.StateTransition: mt.TransitionTime,
		} {
			if !feq(a.times[kind], mtTime) {
				return fmt.Errorf("invariant: disk %d %s time from intervals %g s != meter %g s",
					d, kind, a.times[kind], mtTime)
			}
		}
		for kind, mtEnergy := range map[sim.StateKind]float64{
			sim.StateBusy:       mt.ActiveEnergy,
			sim.StateIdle:       mt.IdleEnergy,
			sim.StateStandby:    mt.StandbyEnergy,
			sim.StateTransition: mt.TransitionEnergy,
		} {
			if !feq(a.energies[kind], mtEnergy) {
				return fmt.Errorf("invariant: disk %d %s energy from intervals %g J != meter %g J",
					d, kind, a.energies[kind], mtEnergy)
			}
		}
	}
	return nil
}

// CheckPolicyDominance asserts the bounded-dominance law relating a
// power-managed run to the NoPM baseline over the same trace. Per-case, a
// policy can exceed Base energy only through three accounted channels:
// servicing slower (DRPM), paying transition energies, and idling out a
// longer makespan. NoPM's energy is exactly PA·busy + PI·(makespan−busy)
// per disk, and every policy state draws at most PA when busy and at most
// PI otherwise, which yields:
//
//	E_P ≤ E_B + Σ_d [(PA−PI)·max(0, ΔBusy_d) + TransE_d]
//	          + NumDisks·PI·max(0, makespan_P − makespan_B)
//
// A violation means the policy accounting invented energy savings it did
// not earn — or charged a state at the wrong power.
func CheckPolicyDominance(base, pol *sim.Result, m disk.Model) error {
	if len(base.PerDisk) != len(pol.PerDisk) {
		return fmt.Errorf("invariant: disk counts differ: base %d, %s %d", len(base.PerDisk), pol.Policy, len(pol.PerDisk))
	}
	pa := power.ActivePowerAt(m, m.RPMMax)
	pi := m.PowerIdle
	slack := 0.0
	for d := range pol.PerDisk {
		if db := pol.PerDisk[d].BusyTime - base.PerDisk[d].BusyTime; db > 0 {
			slack += (pa - pi) * db
		}
		slack += pol.PerDisk[d].Meter.TransitionEnergy
	}
	if dm := pol.Makespan - base.Makespan; dm > 0 {
		slack += float64(len(pol.PerDisk)) * pi * dm
	}
	if !leq(pol.Energy, base.Energy+slack) {
		return fmt.Errorf("invariant: %s energy %g J exceeds Base %g J + accounted slack %g J",
			pol.Policy, pol.Energy, base.Energy, slack)
	}
	return nil
}
