// Package power implements the disk energy model of the paper's evaluation
// (§7.1): the Table 1 state powers and mode-transition costs for TPM disks,
// and the quadratic power-versus-RPM estimation of the DRPM work
// (Gurumurthi et al. [13]) for multi-speed disks.
//
// The quadratic model splits idle power into a speed-independent component
// (electronics, arm — equal to standby power) and an air-drag/spindle
// component that grows with the square of the rotational speed, anchored so
// the model reproduces the data-sheet idle power at full speed:
//
//	P_idle(r) = P_standby + (P_idle(max) - P_standby) · (r/r_max)²
//
// Servicing adds a constant head/channel activity term on top of idle
// power at the current speed.
package power

import "diskreuse/internal/disk"

// Meter accumulates per-state durations and energy for one disk. It is the
// single place energy is computed, so the simulator's accounting identity
// (energy = Σ state power × state time + Σ transition energies) holds by
// construction and is checkable in tests.
type Meter struct {
	M disk.Model

	ActiveTime     float64 // s servicing
	IdleTime       float64 // s spinning, request-free (any RPM)
	StandbyTime    float64 // s spun down
	TransitionTime float64 // s spent changing speed or spinning up/down

	ActiveEnergy     float64 // J
	IdleEnergy       float64 // J
	StandbyEnergy    float64 // J
	TransitionEnergy float64 // J

	SpinUps, SpinDowns int // TPM transitions
	SpeedShifts        int // DRPM level changes
}

// NewMeter returns a Meter for the given disk model.
func NewMeter(m disk.Model) *Meter { return &Meter{M: m} }

// IdlePowerAt returns the idle (spinning, not servicing) power at rpm.
func IdlePowerAt(m disk.Model, rpm int) float64 {
	if rpm <= 0 {
		rpm = m.RPMMax
	}
	f := float64(rpm) / float64(m.RPMMax)
	return m.PowerStandby + (m.PowerIdle-m.PowerStandby)*f*f
}

// ActivePowerAt returns the servicing power at rpm: idle power at that
// speed plus the constant activity delta from the data sheet.
func ActivePowerAt(m disk.Model, rpm int) float64 {
	return IdlePowerAt(m, rpm) + (m.PowerActive - m.PowerIdle)
}

// ShiftTime returns the time to move between two RPM levels, scaled
// linearly from the full spin-up/spin-down times by the speed delta.
func ShiftTime(m disk.Model, from, to int) float64 {
	if from == to {
		return 0
	}
	frac := float64(abs(from-to)) / float64(m.RPMMax)
	if to > from {
		return m.SpinUpTime * frac
	}
	return m.SpinDownTime * frac
}

// ShiftEnergy returns the energy to move between two RPM levels, scaled
// linearly from the full transition energies by the speed delta.
func ShiftEnergy(m disk.Model, from, to int) float64 {
	if from == to {
		return 0
	}
	frac := float64(abs(from-to)) / float64(m.RPMMax)
	if to > from {
		return m.SpinUpEnergy * frac
	}
	return m.SpinDownEnergy * frac
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Active charges dt seconds of servicing at rpm.
func (e *Meter) Active(dt float64, rpm int) {
	if dt <= 0 {
		return
	}
	e.ActiveTime += dt
	e.ActiveEnergy += ActivePowerAt(e.M, rpm) * dt
}

// Idle charges dt seconds of request-free spinning at rpm.
func (e *Meter) Idle(dt float64, rpm int) {
	if dt <= 0 {
		return
	}
	e.IdleTime += dt
	e.IdleEnergy += IdlePowerAt(e.M, rpm) * dt
}

// Standby charges dt seconds spun down.
func (e *Meter) Standby(dt float64) {
	if dt <= 0 {
		return
	}
	e.StandbyTime += dt
	e.StandbyEnergy += e.M.PowerStandby * dt
}

// SpinDown charges a full idle->standby transition (TPM).
func (e *Meter) SpinDown() {
	e.SpinDowns++
	e.TransitionTime += e.M.SpinDownTime
	e.TransitionEnergy += e.M.SpinDownEnergy
}

// SpinUp charges a full standby->active transition (TPM).
func (e *Meter) SpinUp() {
	e.SpinUps++
	e.TransitionTime += e.M.SpinUpTime
	e.TransitionEnergy += e.M.SpinUpEnergy
}

// Shift charges a DRPM speed change between two levels.
func (e *Meter) Shift(from, to int) {
	if from == to {
		return
	}
	e.SpeedShifts++
	e.TransitionTime += ShiftTime(e.M, from, to)
	e.TransitionEnergy += ShiftEnergy(e.M, from, to)
}

// Total returns the accumulated energy in joules.
func (e *Meter) Total() float64 {
	return e.ActiveEnergy + e.IdleEnergy + e.StandbyEnergy + e.TransitionEnergy
}

// TotalTime returns the accumulated wall-clock time accounted for.
func (e *Meter) TotalTime() float64 {
	return e.ActiveTime + e.IdleTime + e.StandbyTime + e.TransitionTime
}

// Breakdown is a meter's time-in-state and energy-by-state decomposition in
// report-friendly form. FracEnergy fields are each state's share of Total
// (zero when Total is zero), so a report can show where the joules went
// without re-deriving the model.
type Breakdown struct {
	ActiveTimeS     float64 `json:"active_time_s"`
	IdleTimeS       float64 `json:"idle_time_s"`
	StandbyTimeS    float64 `json:"standby_time_s"`
	TransitionTimeS float64 `json:"transition_time_s"`

	ActiveEnergyJ     float64 `json:"active_energy_j"`
	IdleEnergyJ       float64 `json:"idle_energy_j"`
	StandbyEnergyJ    float64 `json:"standby_energy_j"`
	TransitionEnergyJ float64 `json:"transition_energy_j"`

	FracActive     float64 `json:"frac_active"`
	FracIdle       float64 `json:"frac_idle"`
	FracStandby    float64 `json:"frac_standby"`
	FracTransition float64 `json:"frac_transition"`
}

// Breakdown returns the meter's per-state decomposition.
func (e *Meter) Breakdown() Breakdown {
	b := Breakdown{
		ActiveTimeS:     e.ActiveTime,
		IdleTimeS:       e.IdleTime,
		StandbyTimeS:    e.StandbyTime,
		TransitionTimeS: e.TransitionTime,

		ActiveEnergyJ:     e.ActiveEnergy,
		IdleEnergyJ:       e.IdleEnergy,
		StandbyEnergyJ:    e.StandbyEnergy,
		TransitionEnergyJ: e.TransitionEnergy,
	}
	if tot := e.Total(); tot > 0 {
		b.FracActive = e.ActiveEnergy / tot
		b.FracIdle = e.IdleEnergy / tot
		b.FracStandby = e.StandbyEnergy / tot
		b.FracTransition = e.TransitionEnergy / tot
	}
	return b
}
