package power

import (
	"math"
	"testing"
	"testing/quick"

	"diskreuse/internal/disk"
)

func TestQuadraticIdlePower(t *testing.T) {
	m := disk.Ultrastar36Z15()
	// Anchors: full speed reproduces the data sheet; the speed-independent
	// floor is the standby power.
	if got := IdlePowerAt(m, 15000); math.Abs(got-10.2) > 1e-9 {
		t.Errorf("P_idle(15000) = %v, want 10.2", got)
	}
	// At 3000 RPM (1/5 speed): 2.5 + 7.7/25 = 2.808 W.
	if got := IdlePowerAt(m, 3000); math.Abs(got-2.808) > 1e-9 {
		t.Errorf("P_idle(3000) = %v, want 2.808", got)
	}
	// Monotone in RPM.
	prev := 0.0
	for _, r := range m.Levels() {
		p := IdlePowerAt(m, r)
		if p <= prev {
			t.Errorf("idle power not increasing at %d RPM", r)
		}
		prev = p
	}
	// rpm<=0 treated as full speed.
	if IdlePowerAt(m, 0) != IdlePowerAt(m, 15000) {
		t.Error("rpm 0 should mean full speed")
	}
}

func TestActivePowerDelta(t *testing.T) {
	m := disk.Ultrastar36Z15()
	if got := ActivePowerAt(m, 15000); math.Abs(got-13.5) > 1e-9 {
		t.Errorf("P_active(15000) = %v, want 13.5", got)
	}
	// The activity delta is constant across speeds.
	for _, r := range m.Levels() {
		if d := ActivePowerAt(m, r) - IdlePowerAt(m, r); math.Abs(d-3.3) > 1e-9 {
			t.Errorf("active delta at %d = %v", r, d)
		}
	}
}

func TestShiftCosts(t *testing.T) {
	m := disk.Ultrastar36Z15()
	// Full-range up-shift equals the data-sheet spin-up cost.
	if got := ShiftTime(m, 3000, 15000); math.Abs(got-10.9*0.8) > 1e-9 {
		t.Errorf("shift time 3000->15000 = %v", got)
	}
	if got := ShiftEnergy(m, 0, 15000); math.Abs(got-135) > 1e-9 {
		t.Errorf("shift energy 0->15000 = %v", got)
	}
	if ShiftTime(m, 6000, 6000) != 0 || ShiftEnergy(m, 6000, 6000) != 0 {
		t.Error("no-op shift must be free")
	}
	// Down-shifts use spin-down costs.
	if got := ShiftEnergy(m, 15000, 12000); math.Abs(got-13.0*0.2) > 1e-9 {
		t.Errorf("down-shift energy = %v", got)
	}
}

func TestMeterAccounting(t *testing.T) {
	m := disk.Ultrastar36Z15()
	e := NewMeter(m)
	e.Active(2, 15000) // 2s × 13.5 = 27 J
	e.Idle(10, 15000)  // 10 × 10.2 = 102 J
	e.Standby(4)       // 4 × 2.5 = 10 J
	e.SpinDown()       // 13 J, 1.5 s
	e.SpinUp()         // 135 J, 10.9 s
	e.Shift(15000, 12000)
	want := 27 + 102 + 10 + 13 + 135 + 13.0*0.2
	if math.Abs(e.Total()-want) > 1e-9 {
		t.Errorf("Total = %v, want %v", e.Total(), want)
	}
	if e.SpinUps != 1 || e.SpinDowns != 1 || e.SpeedShifts != 1 {
		t.Errorf("transition counts: %+v", e)
	}
	wantTime := 2.0 + 10 + 4 + 1.5 + 10.9 + 1.5*0.2
	if math.Abs(e.TotalTime()-wantTime) > 1e-9 {
		t.Errorf("TotalTime = %v, want %v", e.TotalTime(), wantTime)
	}
	// Negative/zero durations are ignored.
	before := e.Total()
	e.Active(-1, 15000)
	e.Idle(0, 15000)
	e.Standby(-5)
	if e.Total() != before {
		t.Error("non-positive durations must not charge energy")
	}
}

// Property: the meter's total is always the sum of its components, and
// energy is monotone under any sequence of charges.
func TestQuickMeterMonotone(t *testing.T) {
	m := disk.Ultrastar36Z15()
	f := func(act, idl, stb uint8, rpmSel uint8) bool {
		e := NewMeter(m)
		levels := m.Levels()
		rpm := levels[int(rpmSel)%len(levels)]
		prev := 0.0
		e.Active(float64(act)/10, rpm)
		if e.Total() < prev {
			return false
		}
		prev = e.Total()
		e.Idle(float64(idl)/10, rpm)
		if e.Total() < prev {
			return false
		}
		prev = e.Total()
		e.Standby(float64(stb) / 10)
		if e.Total() < prev {
			return false
		}
		sum := e.ActiveEnergy + e.IdleEnergy + e.StandbyEnergy + e.TransitionEnergy
		return math.Abs(sum-e.Total()) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: idle power at any level is between standby and full idle.
func TestQuickIdlePowerBounds(t *testing.T) {
	m := disk.Ultrastar36Z15()
	for _, r := range m.Levels() {
		p := IdlePowerAt(m, r)
		if p < m.PowerStandby || p > m.PowerIdle {
			t.Errorf("P_idle(%d) = %v out of [%v, %v]", r, p, m.PowerStandby, m.PowerIdle)
		}
	}
}

// TestBreakdown: the per-state decomposition mirrors the meter exactly and
// its energy fractions sum to one (or stay zero on an empty meter).
func TestBreakdown(t *testing.T) {
	m := disk.Ultrastar36Z15()
	e := NewMeter(m)
	if b := e.Breakdown(); b != (Breakdown{}) {
		t.Errorf("empty meter breakdown = %+v, want all zeros", b)
	}
	e.Active(2, m.RPMMax)
	e.Idle(10, m.RPMMax)
	e.SpinDown()
	e.Standby(30)
	e.SpinUp()
	b := e.Breakdown()
	if b.ActiveTimeS != e.ActiveTime || b.IdleTimeS != e.IdleTime ||
		b.StandbyTimeS != e.StandbyTime || b.TransitionTimeS != e.TransitionTime {
		t.Errorf("times drifted: %+v vs %+v", b, e)
	}
	if b.ActiveEnergyJ != e.ActiveEnergy || b.TransitionEnergyJ != e.TransitionEnergy {
		t.Errorf("energies drifted: %+v", b)
	}
	sum := b.FracActive + b.FracIdle + b.FracStandby + b.FracTransition
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
	if b.FracStandby <= 0 || b.FracStandby >= 1 {
		t.Errorf("FracStandby = %v", b.FracStandby)
	}
}
