package power

import (
	"strings"
	"testing"

	"diskreuse/internal/disk"
)

func TestVerifyMeterAcceptsModelDrivenAccumulation(t *testing.T) {
	m := disk.Ultrastar36Z15()
	e := NewMeter(m)
	e.Active(1.5, m.RPMMax)
	e.Idle(10, m.RPMMax)
	e.Idle(3, m.RPMMin)
	e.SpinDown()
	e.Standby(60)
	e.SpinUp()
	e.Shift(m.RPMMax, m.RPMMin)
	e.Shift(m.RPMMin, m.RPMMax)
	e.Active(0.25, m.RPMMin)
	if err := VerifyMeter(e); err != nil {
		t.Fatalf("honest meter rejected: %v", err)
	}
}

func TestVerifyMeterRejectsTampering(t *testing.T) {
	m := disk.Ultrastar36Z15()
	fresh := func() *Meter {
		e := NewMeter(m)
		e.Active(2, m.RPMMax)
		e.Idle(5, m.RPMMax)
		e.SpinDown()
		e.Standby(30)
		e.SpinUp()
		return e
	}
	cases := []struct {
		name   string
		tamper func(*Meter)
		want   string
	}{
		{"negative time", func(e *Meter) { e.IdleTime = -1 }, "negative"},
		{"idle energy too high", func(e *Meter) { e.IdleEnergy *= 2 }, "idle energy"},
		{"idle energy too low", func(e *Meter) { e.IdleEnergy /= 10 }, "idle energy"},
		{"active energy too low", func(e *Meter) { e.ActiveEnergy = 0 }, "active energy"},
		{"standby mismatch", func(e *Meter) { e.StandbyEnergy += 1 }, "standby energy"},
		{"transition time drift", func(e *Meter) { e.TransitionTime += 0.5 }, "transition time"},
		{"transition energy drift", func(e *Meter) { e.TransitionEnergy -= 1 }, "transition energy"},
		{"uncounted spin-up", func(e *Meter) { e.SpinUps++ }, "transition"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := fresh()
			tc.tamper(e)
			err := VerifyMeter(e)
			if err == nil {
				t.Fatalf("tampered meter accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
