package power

import "fmt"

// verifyEps is the relative slack for the meter's floating-point
// identities: comparisons scale it by (1 + |a| + |b|), so long accumulation
// runs are judged proportionally.
const verifyEps = 1e-9

// leq reports a ≤ b up to relative slack.
func leq(a, b float64) bool { return a <= b+verifyEps*(1+abs64(a)+abs64(b)) }

// eq reports a == b up to relative slack.
func eq(a, b float64) bool { return leq(a, b) && leq(b, a) }

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// VerifyMeter checks a meter's accounting against the energy model: every
// duration and energy is non-negative, each state's energy lies within the
// power bounds the model admits for that state (idle and active power are
// monotone in RPM, so time × power at RPMMin / RPMMax bracket any mix of
// speeds), standby energy is exactly standby power × time, and the
// transition totals decompose into the counted spin-ups, spin-downs, and
// speed shifts. It is the per-disk half of the simulator conservation
// checks in internal/invariant.
func VerifyMeter(e *Meter) error {
	m := e.M
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"ActiveTime", e.ActiveTime}, {"IdleTime", e.IdleTime},
		{"StandbyTime", e.StandbyTime}, {"TransitionTime", e.TransitionTime},
		{"ActiveEnergy", e.ActiveEnergy}, {"IdleEnergy", e.IdleEnergy},
		{"StandbyEnergy", e.StandbyEnergy}, {"TransitionEnergy", e.TransitionEnergy},
	} {
		if c.v < 0 {
			return fmt.Errorf("power: %s negative: %g", c.name, c.v)
		}
	}
	if e.SpinUps < 0 || e.SpinDowns < 0 || e.SpeedShifts < 0 {
		return fmt.Errorf("power: negative transition count (ups=%d downs=%d shifts=%d)",
			e.SpinUps, e.SpinDowns, e.SpeedShifts)
	}

	// Idle and active power are monotone increasing in RPM, so the energy
	// accumulated over any mix of speeds in [RPMMin, RPMMax] is bracketed by
	// the extremes. A model without a low-speed mode (RPMMin <= 0) still
	// bottoms out at standby power, the speed-independent component.
	idleLo := m.PowerStandby
	if m.RPMMin > 0 {
		idleLo = IdlePowerAt(m, m.RPMMin)
	}
	idleHi := IdlePowerAt(m, m.RPMMax)
	if !leq(idleLo*e.IdleTime, e.IdleEnergy) || !leq(e.IdleEnergy, idleHi*e.IdleTime) {
		return fmt.Errorf("power: idle energy %g J outside [%g, %g] for %g s idle",
			e.IdleEnergy, idleLo*e.IdleTime, idleHi*e.IdleTime, e.IdleTime)
	}
	activeLo := idleLo + (m.PowerActive - m.PowerIdle)
	activeHi := ActivePowerAt(m, m.RPMMax)
	if !leq(activeLo*e.ActiveTime, e.ActiveEnergy) || !leq(e.ActiveEnergy, activeHi*e.ActiveTime) {
		return fmt.Errorf("power: active energy %g J outside [%g, %g] for %g s active",
			e.ActiveEnergy, activeLo*e.ActiveTime, activeHi*e.ActiveTime, e.ActiveTime)
	}
	if !eq(e.StandbyEnergy, m.PowerStandby*e.StandbyTime) {
		return fmt.Errorf("power: standby energy %g J != %g W × %g s",
			e.StandbyEnergy, m.PowerStandby, e.StandbyTime)
	}

	// Transitions: full spin-ups/downs charge their data-sheet costs
	// exactly; each DRPM shift charges at most one full transition (scaled
	// by the speed delta), so the counted shifts bound the remainder.
	baseT := float64(e.SpinUps)*m.SpinUpTime + float64(e.SpinDowns)*m.SpinDownTime
	baseE := float64(e.SpinUps)*m.SpinUpEnergy + float64(e.SpinDowns)*m.SpinDownEnergy
	maxShiftT := m.SpinUpTime
	if m.SpinDownTime > maxShiftT {
		maxShiftT = m.SpinDownTime
	}
	maxShiftE := m.SpinUpEnergy
	if m.SpinDownEnergy > maxShiftE {
		maxShiftE = m.SpinDownEnergy
	}
	if e.SpeedShifts == 0 {
		if !eq(e.TransitionTime, baseT) {
			return fmt.Errorf("power: transition time %g s != %d spin-ups + %d spin-downs = %g s",
				e.TransitionTime, e.SpinUps, e.SpinDowns, baseT)
		}
		if !eq(e.TransitionEnergy, baseE) {
			return fmt.Errorf("power: transition energy %g J != %d spin-ups + %d spin-downs = %g J",
				e.TransitionEnergy, e.SpinUps, e.SpinDowns, baseE)
		}
	} else {
		if !leq(baseT, e.TransitionTime) || !leq(e.TransitionTime, baseT+float64(e.SpeedShifts)*maxShiftT) {
			return fmt.Errorf("power: transition time %g s outside [%g, %g] for %d shifts",
				e.TransitionTime, baseT, baseT+float64(e.SpeedShifts)*maxShiftT, e.SpeedShifts)
		}
		if !leq(baseE, e.TransitionEnergy) || !leq(e.TransitionEnergy, baseE+float64(e.SpeedShifts)*maxShiftE) {
			return fmt.Errorf("power: transition energy %g J outside [%g, %g] for %d shifts",
				e.TransitionEnergy, baseE, baseE+float64(e.SpeedShifts)*maxShiftE, e.SpeedShifts)
		}
	}
	return nil
}
