module diskreuse

go 1.22
